//! The paper's 2-bit permission encoding and access kinds.

use core::fmt;

/// Kind of memory access issued by a CPU core or accelerator engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data load.
    Read,
    /// Data store.
    Write,
    /// Instruction fetch.
    Execute,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
            AccessKind::Execute => write!(f, "execute"),
        }
    }
}

/// The paper's 2-bit permission encoding (§4.1):
/// `00` None, `01` Read-Only, `10` Read-Write, `11` Read-Execute.
///
/// The numeric discriminants are part of the on-"disk" format of Permission
/// Entries and must not change.
///
/// # Examples
///
/// ```
/// use dvm_types::{Permission, AccessKind};
/// assert_eq!(Permission::from_bits(0b10), Permission::ReadWrite);
/// assert_eq!(Permission::ReadExec.bits(), 0b11);
/// assert!(Permission::ReadExec.allows(AccessKind::Execute));
/// assert!(!Permission::None.allows(AccessKind::Read));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum Permission {
    /// No access (also encodes "unallocated" gaps inside a Permission Entry).
    #[default]
    None = 0b00,
    /// Read-only.
    ReadOnly = 0b01,
    /// Read and write.
    ReadWrite = 0b10,
    /// Read and execute.
    ReadExec = 0b11,
}

impl Permission {
    /// All permission values in encoding order.
    pub const ALL: [Permission; 4] = [
        Permission::None,
        Permission::ReadOnly,
        Permission::ReadWrite,
        Permission::ReadExec,
    ];

    /// Decode from the 2-bit field value.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 0b11`.
    #[inline]
    pub fn from_bits(bits: u8) -> Self {
        match bits {
            0b00 => Permission::None,
            0b01 => Permission::ReadOnly,
            0b10 => Permission::ReadWrite,
            0b11 => Permission::ReadExec,
            _ => panic!("permission field wider than 2 bits: {bits:#b}"),
        }
    }

    /// Encode to the 2-bit field value.
    #[inline]
    pub const fn bits(self) -> u8 {
        self as u8
    }

    /// Does this permission allow the given access kind?
    #[inline]
    pub const fn allows(self, kind: AccessKind) -> bool {
        match (self, kind) {
            (Permission::None, _) => false,
            (_, AccessKind::Read) => true,
            (Permission::ReadWrite, AccessKind::Write) => true,
            (Permission::ReadExec, AccessKind::Execute) => true,
            _ => false,
        }
    }

    /// `true` for any permission other than [`Permission::None`].
    #[inline]
    pub const fn is_mapped(self) -> bool {
        !matches!(self, Permission::None)
    }
}

impl fmt::Display for Permission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Permission::None => write!(f, "--"),
            Permission::ReadOnly => write!(f, "r-"),
            Permission::ReadWrite => write!(f, "rw"),
            Permission::ReadExec => write!(f, "rx"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_roundtrip() {
        for p in Permission::ALL {
            assert_eq!(Permission::from_bits(p.bits()), p);
        }
    }

    #[test]
    fn encoding_matches_paper() {
        assert_eq!(Permission::None.bits(), 0b00);
        assert_eq!(Permission::ReadOnly.bits(), 0b01);
        assert_eq!(Permission::ReadWrite.bits(), 0b10);
        assert_eq!(Permission::ReadExec.bits(), 0b11);
    }

    #[test]
    #[should_panic(expected = "wider than 2 bits")]
    fn from_bits_rejects_wide_values() {
        let _ = Permission::from_bits(4);
    }

    #[test]
    fn allows_matrix() {
        use AccessKind::*;
        let cases = [
            (Permission::None, Read, false),
            (Permission::None, Write, false),
            (Permission::None, Execute, false),
            (Permission::ReadOnly, Read, true),
            (Permission::ReadOnly, Write, false),
            (Permission::ReadOnly, Execute, false),
            (Permission::ReadWrite, Read, true),
            (Permission::ReadWrite, Write, true),
            (Permission::ReadWrite, Execute, false),
            (Permission::ReadExec, Read, true),
            (Permission::ReadExec, Write, false),
            (Permission::ReadExec, Execute, true),
        ];
        for (p, k, want) in cases {
            assert_eq!(p.allows(k), want, "{p} allows {k}");
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Permission::ReadWrite.to_string(), "rw");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }
}
