//! Error and fault types shared across the simulator.

use crate::{AccessKind, VirtAddr};
use core::fmt;
use std::error::Error;

/// Why a memory access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// No translation exists for the address.
    NotMapped,
    /// A mapping exists, but its permissions do not allow the access.
    Protection,
}

/// A memory-access fault, raised on the host CPU in the paper's design
/// when an accelerator access fails Devirtualized Access Validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Faulting virtual address.
    pub va: VirtAddr,
    /// Kind of access that faulted.
    pub access: AccessKind,
    /// Why it faulted.
    pub kind: FaultKind,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::NotMapped => write!(f, "{} to unmapped {}", self.access, self.va),
            FaultKind::Protection => write!(f, "{} denied at {}", self.access, self.va),
        }
    }
}

impl Error for Fault {}

/// Errors produced by the DVM simulation crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DvmError {
    /// Physical memory is exhausted or too fragmented for the request.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
    },
    /// The requested virtual address range collides with an existing mapping.
    VaRangeBusy {
        /// Start of the busy range.
        va: VirtAddr,
        /// Length in bytes.
        len: u64,
    },
    /// A memory access faulted.
    Fault(Fault),
    /// The argument was malformed (misaligned, zero-sized, out of range).
    InvalidArgument(&'static str),
    /// Referenced process does not exist.
    NoSuchProcess(u32),
}

impl fmt::Display for DvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DvmError::OutOfMemory { requested } => {
                write!(f, "out of physical memory allocating {requested} bytes")
            }
            DvmError::VaRangeBusy { va, len } => {
                write!(f, "virtual range [{va}, +{len:#x}) already mapped")
            }
            DvmError::Fault(fault) => write!(f, "memory fault: {fault}"),
            DvmError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            DvmError::NoSuchProcess(pid) => write!(f, "no such process: {pid}"),
        }
    }
}

impl Error for DvmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DvmError::Fault(fault) => Some(fault),
            _ => None,
        }
    }
}

impl From<Fault> for DvmError {
    fn from(fault: Fault) -> Self {
        DvmError::Fault(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn errors_are_send_sync() {
        assert_send_sync::<DvmError>();
        assert_send_sync::<Fault>();
    }

    #[test]
    fn display_messages() {
        let fault = Fault {
            va: VirtAddr::new(0x1000),
            access: AccessKind::Write,
            kind: FaultKind::Protection,
        };
        assert_eq!(fault.to_string(), "write denied at va:0x1000");
        assert_eq!(
            DvmError::OutOfMemory { requested: 42 }.to_string(),
            "out of physical memory allocating 42 bytes"
        );
        assert!(DvmError::from(fault).to_string().contains("denied"));
    }

    #[test]
    fn source_chains_to_fault() {
        let fault = Fault {
            va: VirtAddr::new(0),
            access: AccessKind::Read,
            kind: FaultKind::NotMapped,
        };
        let err = DvmError::from(fault);
        assert!(err.source().is_some());
        assert!(DvmError::InvalidArgument("x").source().is_none());
    }
}
