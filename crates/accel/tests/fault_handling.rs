//! Accelerator fault behaviour: DAV must stop a workload that strays onto
//! memory it has no right to touch, without corrupting anything.

use dvm_accel::{layout, run, run_pipelined, AccelConfig, LaneParts, Workload};
use dvm_energy::EnergyParams;
use dvm_graph::{rmat, RmatParams};
use dvm_mem::{Dram, DramConfig, MachineConfig};
use dvm_mmu::{Iommu, MemSystem, SchemeId};
use dvm_os::{Os, OsConfig};
use dvm_types::{FaultKind, Permission};

#[test]
fn revoked_permissions_abort_the_offload() {
    let mut os = Os::new(OsConfig {
        machine: MachineConfig { mem_bytes: 1 << 30 },
        ..OsConfig::default()
    });
    let pid = os.spawn().unwrap();
    let graph = rmat(10, 4, RmatParams::default(), 21);
    let workload = Workload::PageRank { iterations: 1 };
    let g = layout::load_graph(&mut os, pid, &graph, workload.prop_stride()).unwrap();

    // The host revokes write access to the temp array before offloading —
    // the accelerator's first reduce write must fault.
    os.mprotect(pid, g.temp_va, Permission::ReadOnly).unwrap();

    let mut iommu = Iommu::new(SchemeId::DVM_PE_PLUS, EnergyParams::default());
    let mut dram = Dram::new(DramConfig::default());
    let pt = os.process(pid).unwrap().page_table;
    let mut sys = MemSystem::new(&mut iommu, &pt, None, &mut os.machine.mem, &mut dram);
    let fault = run(&workload, &g, &mut sys, &AccelConfig::default()).unwrap_err();
    assert_eq!(fault.kind, FaultKind::Protection);
    assert!(g.temp_va.raw() <= fault.va.raw());
    assert_eq!(sys.iommu.stats.faults.get(), 1);
}

#[test]
fn unmapped_graph_memory_faults_as_not_mapped() {
    let mut os = Os::new(OsConfig {
        machine: MachineConfig { mem_bytes: 1 << 30 },
        ..OsConfig::default()
    });
    let pid = os.spawn().unwrap();
    let graph = rmat(10, 4, RmatParams::default(), 22);
    let workload = Workload::Bfs { root: 0 };
    let g = layout::load_graph(&mut os, pid, &graph, workload.prop_stride()).unwrap();

    // The host unmaps the next-frontier array (a use-after-free bug); the
    // accelerator faults on its first enqueue. (The current frontier must
    // stay mapped — the host writes the root into it during setup.)
    os.munmap(pid, g.frontier_b_va).unwrap();

    let mut iommu = Iommu::new(SchemeId::DVM_PE, EnergyParams::default());
    let mut dram = Dram::new(DramConfig::default());
    let pt = os.process(pid).unwrap().page_table;
    let mut sys = MemSystem::new(&mut iommu, &pt, None, &mut os.machine.mem, &mut dram);
    let fault = run(&workload, &g, &mut sys, &AccelConfig::default()).unwrap_err();
    assert_eq!(fault.kind, FaultKind::NotMapped);
}

#[test]
fn faults_do_not_corrupt_other_processes() {
    // Process B's data is physically adjacent to process A's graph; a
    // faulting run on behalf of A must leave B untouched.
    let mut os = Os::new(OsConfig {
        machine: MachineConfig { mem_bytes: 1 << 30 },
        ..OsConfig::default()
    });
    let a = os.spawn().unwrap();
    let b = os.spawn().unwrap();
    let secret_va = os.mmap(b, 1 << 20, Permission::ReadWrite).unwrap();
    os.write_u64(b, secret_va, 0x5ECE7).unwrap();

    let graph = rmat(9, 4, RmatParams::default(), 23);
    let workload = Workload::Sssp {
        root: 0,
        max_iterations: 8,
    };
    let g = layout::load_graph(&mut os, a, &graph, workload.prop_stride()).unwrap();
    os.mprotect(a, g.prop_va, Permission::ReadOnly).unwrap();

    let mut iommu = Iommu::new(SchemeId::DVM_PE_PLUS, EnergyParams::default());
    let mut dram = Dram::new(DramConfig::default());
    let pt = os.process(a).unwrap().page_table;
    let mut sys = MemSystem::new(&mut iommu, &pt, None, &mut os.machine.mem, &mut dram);
    // SSSP initialization writes the prop array through the OS... it is
    // done untimed by the runner, so the fault comes from the timed path.
    let result = run(&workload, &g, &mut sys, &AccelConfig::default());
    assert!(result.is_err());
    assert_eq!(os.read_u64(b, secret_va).unwrap(), 0x5ECE7);
}

/// A faulting offload must be observationally identical whatever the
/// lane count: same fault, same IOMMU counters, same DRAM counters (the
/// failed access's walker fetches included), on every pipelined path.
#[test]
fn pipelined_faults_match_serial_exactly() {
    let observe = |lanes: u32, scheme: SchemeId| {
        let flavor = match scheme.required_leaf_size() {
            Some(page_size) => dvm_os::MapFlavor::Paged(page_size),
            None => dvm_os::MapFlavor::DvmPe,
        };
        let mut os = Os::new(OsConfig {
            machine: MachineConfig { mem_bytes: 1 << 30 },
            flavor,
            ..OsConfig::default()
        });
        let pid = os.spawn().unwrap();
        let graph = rmat(9, 4, RmatParams::default(), 21);
        let workload = Workload::PageRank { iterations: 1 };
        let g = layout::load_graph(&mut os, pid, &graph, workload.prop_stride()).unwrap();
        os.mprotect(pid, g.temp_va, Permission::ReadOnly).unwrap();

        let mut iommu = Iommu::new(scheme, EnergyParams::default());
        let mut dram = Dram::new(DramConfig::default());
        let pt = os.process(pid).unwrap().page_table;
        let cfg = AccelConfig::default();
        let fault = if lanes >= 2 {
            run_pipelined(
                &workload,
                &g,
                LaneParts {
                    iommu: &mut iommu,
                    pt: &pt,
                    bitmap: None,
                    mem: &mut os.machine.mem,
                    dram: &mut dram,
                },
                &cfg,
                lanes,
            )
            .unwrap_err()
        } else {
            let mut sys = MemSystem::new(&mut iommu, &pt, None, &mut os.machine.mem, &mut dram);
            run(&workload, &g, &mut sys, &cfg).unwrap_err()
        };
        assert_eq!(fault.kind, FaultKind::Protection, "lanes={lanes}");
        assert_eq!(iommu.stats.faults.get(), 1, "lanes={lanes}");
        format!(
            "fault={fault:?} iommu={:?} dram: reads={} writes={} channels={:?}",
            iommu.stats,
            dram.reads(),
            dram.writes(),
            dram.channel_accesses(),
        )
    };
    for scheme in [SchemeId::DVM_PE_PLUS, SchemeId::CONV_4K] {
        let serial = observe(1, scheme);
        for lanes in 2..=dvm_accel::MAX_LANES {
            assert_eq!(serial, observe(lanes, scheme), "{scheme} @ {lanes} lanes");
        }
    }
}
