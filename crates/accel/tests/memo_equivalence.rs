//! The translation memos are pure caches: a run with the untimed-path
//! memo and the walker memo disabled must be *bit-identical* — results,
//! property arrays, every IOMMU counter, every DRAM counter — to the
//! default run on all seven paper configurations. This is the
//! whole-system counterpart of the unit tests in `dvm_mmu::memo`.

use dvm_accel::{layout, run, AccelConfig, Workload};
use dvm_energy::EnergyParams;
use dvm_graph::{rmat, to_bipartite, Graph, RmatParams};
use dvm_mem::{Dram, DramConfig, MachineConfig};
use dvm_mmu::{Iommu, MemSystem, SchemeId, TranslationMemo};
use dvm_os::{MapFlavor, Os, OsConfig};

fn os_for(config: SchemeId) -> Os {
    let flavor = match config.required_leaf_size() {
        Some(page_size) => MapFlavor::Paged(page_size),
        None => MapFlavor::DvmPe,
    };
    Os::new(OsConfig {
        machine: MachineConfig { mem_bytes: 8 << 30 },
        flavor,
        maintain_bitmap: config.needs_bitmap(),
        ..OsConfig::default()
    })
}

/// Everything observable about a run, formatted so a plain `assert_eq!`
/// reports the first diverging component.
struct Observation {
    result: String,
    props_u32: Vec<u32>,
    props_f32: Vec<u32>,
    iommu: String,
    dram: String,
}

fn observe(config: SchemeId, workload: &Workload, graph: &Graph, memos: bool) -> Observation {
    let mut os = os_for(config);
    let pid = os.spawn().unwrap();
    let g = layout::load_graph(&mut os, pid, graph, workload.prop_stride()).unwrap();
    let mut iommu = Iommu::new(config, EnergyParams::default());
    iommu.set_walk_memo(memos);
    let mut dram = Dram::new(DramConfig::default());
    let pt = os.process(pid).unwrap().page_table;
    let bitmap = os.bitmap;
    let mut sys = MemSystem::new(
        &mut iommu,
        &pt,
        bitmap.as_ref(),
        &mut os.machine.mem,
        &mut dram,
    );
    if !memos {
        sys.memo = TranslationMemo::disabled();
    }
    let result = run(workload, &g, &mut sys, &AccelConfig::default()).unwrap();
    let props_u32 = dvm_accel::dump_props_u32(&sys, &g);
    // Compare float properties by bit pattern: equality must be exact,
    // including any NaN payloads.
    let props_f32 = dvm_accel::dump_props_f32(&sys, &g)
        .into_iter()
        .map(f32::to_bits)
        .collect();
    Observation {
        result: format!("{result:?}"),
        props_u32,
        props_f32,
        iommu: format!(
            "{:?} tlb={:?} ptc={:?} bitmap={:?} energy={:?}",
            sys.iommu.stats,
            sys.iommu.tlb_stats(),
            sys.iommu.ptc_stats(),
            sys.iommu.bitmap_cache_stats(),
            sys.iommu.energy,
        ),
        dram: format!(
            "reads={} writes={} channels={:?}",
            sys.dram.reads(),
            sys.dram.writes(),
            sys.dram.channel_accesses(),
        ),
    }
}

fn assert_equivalent(workload: &Workload, graph: &Graph) {
    for config in SchemeId::PAPER_SET {
        let with = observe(config, workload, graph, true);
        let without = observe(config, workload, graph, false);
        assert_eq!(with.result, without.result, "{config}: run result");
        assert_eq!(with.props_u32, without.props_u32, "{config}: u32 props");
        assert_eq!(with.props_f32, without.props_f32, "{config}: f32 props");
        assert_eq!(with.iommu, without.iommu, "{config}: IOMMU state");
        assert_eq!(with.dram, without.dram, "{config}: DRAM counters");
    }
}

#[test]
fn bfs_is_memo_invariant_on_all_configs() {
    let graph = rmat(9, 8, RmatParams::default(), 42);
    assert_equivalent(&Workload::Bfs { root: 0 }, &graph);
}

#[test]
fn pagerank_is_memo_invariant_on_all_configs() {
    let graph = rmat(9, 8, RmatParams::default(), 42);
    assert_equivalent(&Workload::PageRank { iterations: 2 }, &graph);
}

#[test]
fn sssp_is_memo_invariant_on_all_configs() {
    let graph = rmat(9, 8, RmatParams::default(), 42);
    assert_equivalent(
        &Workload::Sssp {
            root: 0,
            max_iterations: 64,
        },
        &graph,
    );
}

#[test]
fn cf_is_memo_invariant_on_all_configs() {
    let graph = to_bipartite(&rmat(9, 8, RmatParams::default(), 43), 400, 80);
    assert_equivalent(
        &Workload::Cf {
            iterations: 1,
            features: 8,
        },
        &graph,
    );
}
