//! End-to-end correctness: every workload, executed through *every*
//! memory-management configuration, must produce results identical to the
//! host reference implementations — the timing scheme must never change
//! functional behaviour.

use dvm_accel::{layout, reference, run, AccelConfig, Workload};
use dvm_energy::EnergyParams;
use dvm_graph::{rmat, to_bipartite, Graph, RmatParams};
use dvm_mem::{Dram, DramConfig, MachineConfig};
use dvm_mmu::{Iommu, MemSystem, SchemeId};
use dvm_os::{MapFlavor, Os, OsConfig};

fn os_for(config: SchemeId) -> Os {
    let flavor = match config.required_leaf_size() {
        Some(page_size) => MapFlavor::Paged(page_size),
        None => MapFlavor::DvmPe,
    };
    Os::new(OsConfig {
        machine: MachineConfig {
            mem_bytes: 8 << 30, // roomy: the 1G flavour pads every region
        },
        flavor,
        maintain_bitmap: config.needs_bitmap(),
        ..OsConfig::default()
    })
}

fn run_workload(
    config: SchemeId,
    workload: &Workload,
    graph: &Graph,
) -> (dvm_accel::RunResult, Vec<u32>, Vec<f32>) {
    let mut os = os_for(config);
    let pid = os.spawn().unwrap();
    let g = layout::load_graph(&mut os, pid, graph, workload.prop_stride()).unwrap();
    let mut iommu = Iommu::new(config, EnergyParams::default());
    let mut dram = Dram::new(DramConfig::default());
    let pt = os.process(pid).unwrap().page_table;
    let bitmap = os.bitmap;
    let mut sys = MemSystem::new(
        &mut iommu,
        &pt,
        bitmap.as_ref(),
        &mut os.machine.mem,
        &mut dram,
    );
    let result = run(workload, &g, &mut sys, &AccelConfig::default()).unwrap();
    let props_u32 = dvm_accel::dump_props_u32(&sys, &g);
    let props_f32 = dvm_accel::dump_props_f32(&sys, &g);
    (result, props_u32, props_f32)
}

fn test_graph() -> Graph {
    rmat(9, 8, RmatParams::default(), 42)
}

fn bipartite_graph() -> Graph {
    to_bipartite(&rmat(9, 8, RmatParams::default(), 43), 400, 80)
}

#[test]
fn bfs_matches_reference_on_all_configs() {
    let graph = test_graph();
    let want = reference::bfs_levels(&graph, 0);
    for config in SchemeId::PAPER_SET {
        let (_, levels, _) = run_workload(config, &Workload::Bfs { root: 0 }, &graph);
        assert_eq!(levels, want, "config {config}");
    }
}

#[test]
fn pagerank_matches_reference_on_all_configs() {
    let graph = test_graph();
    let want = reference::pagerank(&graph, 2);
    for config in SchemeId::PAPER_SET {
        let (_, _, ranks) = run_workload(config, &Workload::PageRank { iterations: 2 }, &graph);
        assert_eq!(ranks, want, "config {config} (bitwise CSR-order match)");
    }
}

#[test]
fn sssp_matches_dijkstra_on_all_configs() {
    let graph = test_graph();
    let want = reference::sssp_distances(&graph, 0);
    for config in [SchemeId::IDEAL, SchemeId::DVM_PE_PLUS, SchemeId::CONV_4K] {
        let (_, _, dist) = run_workload(
            config,
            &Workload::Sssp {
                root: 0,
                max_iterations: 512,
            },
            &graph,
        );
        for v in 0..graph.num_vertices() as usize {
            let (got, want_v) = (dist[v], want[v]);
            assert!(
                (got.is_infinite() && want_v.is_infinite())
                    || (got - want_v).abs() <= 1e-4 * want_v.abs().max(1.0),
                "config {config} vertex {v}: {got} vs {want_v}"
            );
        }
    }
}

#[test]
fn cf_matches_reference_sgd() {
    let graph = bipartite_graph();
    let workload = Workload::Cf {
        iterations: 1,
        features: 8,
    };
    let want = reference::cf_factors(&graph, 1, 8);
    for config in [SchemeId::IDEAL, SchemeId::DVM_PE_PLUS] {
        let mut os = os_for(config);
        let pid = os.spawn().unwrap();
        let g = layout::load_graph(&mut os, pid, &graph, workload.prop_stride()).unwrap();
        let mut iommu = Iommu::new(config, EnergyParams::default());
        let mut dram = Dram::new(DramConfig::default());
        let pt = os.process(pid).unwrap().page_table;
        let mut sys = MemSystem::new(&mut iommu, &pt, None, &mut os.machine.mem, &mut dram);
        run(&workload, &g, &mut sys, &AccelConfig::default()).unwrap();
        // Dump all 8 features per vertex.
        let mut got = Vec::new();
        for v in 0..g.num_vertices {
            for f in 0..8u64 {
                let (pa, _) = sys.pt.translate(sys.mem, g.prop_entry(v) + f * 4).unwrap();
                got.push(sys.mem.read_f32(pa));
            }
        }
        assert_eq!(got, want, "config {config}");
    }
}

#[test]
fn identical_work_across_configs() {
    // The access stream (edges processed, iterations) must be independent
    // of the MMU scheme; only the timing differs.
    let graph = test_graph();
    let workload = Workload::Bfs { root: 0 };
    let mut baseline = None;
    for config in SchemeId::PAPER_SET {
        let (result, _, _) = run_workload(config, &workload, &graph);
        let key = (result.edges_processed, result.iterations);
        match &baseline {
            None => baseline = Some(key),
            Some(want) => assert_eq!(&key, want, "config {config}"),
        }
    }
}

#[test]
fn dvm_pe_is_faster_than_4k_and_slower_than_ideal() {
    // The DVM advantage needs a working set well beyond the 512 KiB reach
    // of the 128-entry 4K TLB (paper Figure 2); scale 17 gives a ~14 MiB
    // footprint.
    let graph = rmat(17, 8, RmatParams::default(), 7);
    let workload = Workload::PageRank { iterations: 1 };
    let (ideal, _, _) = run_workload(SchemeId::IDEAL, &workload, &graph);
    let (pe_plus, _, _) = run_workload(SchemeId::DVM_PE_PLUS, &workload, &graph);
    let (four_k, _, _) = run_workload(SchemeId::CONV_4K, &workload, &graph);
    assert!(ideal.cycles <= pe_plus.cycles);
    assert!(
        pe_plus.cycles < four_k.cycles,
        "DVM-PE+ {} vs 4K {}",
        pe_plus.cycles,
        four_k.cycles
    );
}

#[test]
fn engines_share_work() {
    let graph = test_graph();
    let (result, _, _) = run_workload(
        SchemeId::IDEAL,
        &Workload::PageRank { iterations: 1 },
        &graph,
    );
    assert_eq!(result.engine_cycles.len(), 8);
    let min = *result.engine_cycles.iter().min().unwrap();
    let max = *result.engine_cycles.iter().max().unwrap();
    assert!(min > 0, "every engine did work");
    assert!(max < min * 5, "load imbalance too extreme: {min}..{max}");
}

#[test]
fn deterministic_cycles() {
    let graph = test_graph();
    let workload = Workload::Sssp {
        root: 0,
        max_iterations: 64,
    };
    let (a, _, _) = run_workload(SchemeId::DVM_PE, &workload, &graph);
    let (b, _, _) = run_workload(SchemeId::DVM_PE, &workload, &graph);
    assert_eq!(a, b);
}
