//! Lane partitioning is a pure execution strategy: a pipelined run —
//! two lanes (functional | timing) or three (functional | translate |
//! memory) — must be *bit-identical* — results, property arrays, every
//! IOMMU counter, every DRAM counter — to the fused serial run on every
//! registered scheme, the paper set and the SVA rivals alike. This is
//! the whole-system counterpart of the sweep test
//! `lanes_do_not_perturb_results` in `dvm-core`.

use dvm_accel::run::run_pipelined_tuned_via;
use dvm_accel::{layout, run, run_pipelined, AccelConfig, LaneParts, LaneTuning, Workload};
use dvm_energy::EnergyParams;
use dvm_graph::{rmat, to_bipartite, Graph, RmatParams};
use dvm_mem::{Dram, DramConfig, MachineConfig};
use dvm_mmu::{dispatch, Iommu, MemSystem, SchemeId};
use dvm_os::{MapFlavor, Os, OsConfig};

fn os_for(config: SchemeId) -> Os {
    let flavor = match config.required_leaf_size() {
        Some(page_size) => MapFlavor::Paged(page_size),
        None => MapFlavor::DvmPe,
    };
    Os::new(OsConfig {
        machine: MachineConfig { mem_bytes: 8 << 30 },
        flavor,
        maintain_bitmap: config.needs_bitmap(),
        ..OsConfig::default()
    })
}

/// Everything observable about a run, formatted so a plain `assert_eq!`
/// reports the first diverging component.
struct Observation {
    result: String,
    props_u32: Vec<u32>,
    props_f32: Vec<u32>,
    iommu: String,
    dram: String,
}

/// Run one (scheme, workload, graph) unit at the given lane count
/// (`1` = fused serial; `2`/`3` = pipelined) and dump the full counter
/// state. `tuning` shrinks the transport for the chunk-edge tests.
fn observe_tuned(
    config: SchemeId,
    workload: &Workload,
    graph: &Graph,
    lanes: u32,
    tuning: LaneTuning,
) -> Observation {
    let mut os = os_for(config);
    let pid = os.spawn().unwrap();
    let g = layout::load_graph(&mut os, pid, graph, workload.prop_stride()).unwrap();
    let mut iommu = Iommu::new(config, EnergyParams::default());
    let mut dram = Dram::new(DramConfig::default());
    let pt = os.process(pid).unwrap().page_table;
    let bitmap = os.bitmap;
    let cfg = AccelConfig::default();
    let result = if lanes >= 2 {
        run_pipelined_tuned_via::<dispatch::Dyn>(
            workload,
            &g,
            LaneParts {
                iommu: &mut iommu,
                pt: &pt,
                bitmap: bitmap.as_ref(),
                mem: &mut os.machine.mem,
                dram: &mut dram,
            },
            &cfg,
            lanes,
            tuning,
        )
        .unwrap()
    } else {
        let mut sys = MemSystem::new(
            &mut iommu,
            &pt,
            bitmap.as_ref(),
            &mut os.machine.mem,
            &mut dram,
        );
        run(workload, &g, &mut sys, &cfg).unwrap()
    };
    // The pipelined run hands the borrows back when it returns; a fresh
    // MemSystem over the same parts reads the final property arrays.
    let sys = MemSystem::new(
        &mut iommu,
        &pt,
        bitmap.as_ref(),
        &mut os.machine.mem,
        &mut dram,
    );
    let props_u32 = dvm_accel::dump_props_u32(&sys, &g);
    // Compare float properties by bit pattern: equality must be exact,
    // including any NaN payloads.
    let props_f32 = dvm_accel::dump_props_f32(&sys, &g)
        .into_iter()
        .map(f32::to_bits)
        .collect();
    Observation {
        result: format!("{result:?}"),
        props_u32,
        props_f32,
        iommu: format!(
            "{:?} tlb={:?} ptc={:?} bitmap={:?} energy={:?}",
            sys.iommu.stats,
            sys.iommu.tlb_stats(),
            sys.iommu.ptc_stats(),
            sys.iommu.bitmap_cache_stats(),
            sys.iommu.energy,
        ),
        dram: format!(
            "reads={} writes={} channels={:?}",
            sys.dram.reads(),
            sys.dram.writes(),
            sys.dram.channel_accesses(),
        ),
    }
}

fn observe(config: SchemeId, workload: &Workload, graph: &Graph, lanes: u32) -> Observation {
    observe_tuned(config, workload, graph, lanes, LaneTuning::default())
}

fn assert_matches(serial: &Observation, laned: &Observation, label: &str) {
    assert_eq!(serial.result, laned.result, "{label}: run result");
    assert_eq!(serial.props_u32, laned.props_u32, "{label}: u32 props");
    assert_eq!(serial.props_f32, laned.props_f32, "{label}: f32 props");
    assert_eq!(serial.iommu, laned.iommu, "{label}: IOMMU state");
    assert_eq!(serial.dram, laned.dram, "{label}: DRAM counters");
}

fn assert_equivalent(workload: &Workload, graph: &Graph) {
    // Every registered scheme: the seven paper configurations plus the
    // SVA rivals (and anything a test registered before this ran).
    for config in SchemeId::all() {
        let serial = observe(config, workload, graph, 1);
        for lanes in 2..=dvm_accel::MAX_LANES {
            let laned = observe(config, workload, graph, lanes);
            assert_matches(&serial, &laned, &format!("{config} @ {lanes} lanes"));
        }
    }
}

#[test]
fn bfs_is_lane_invariant_on_all_schemes() {
    let graph = rmat(9, 8, RmatParams::default(), 42);
    assert_equivalent(&Workload::Bfs { root: 0 }, &graph);
}

#[test]
fn pagerank_is_lane_invariant_on_all_schemes() {
    let graph = rmat(9, 8, RmatParams::default(), 42);
    assert_equivalent(&Workload::PageRank { iterations: 2 }, &graph);
}

#[test]
fn sssp_is_lane_invariant_on_all_schemes() {
    let graph = rmat(9, 8, RmatParams::default(), 42);
    assert_equivalent(
        &Workload::Sssp {
            root: 0,
            max_iterations: 64,
        },
        &graph,
    );
}

#[test]
fn cf_is_lane_invariant_on_all_schemes() {
    let graph = to_bipartite(&rmat(9, 8, RmatParams::default(), 43), 400, 80);
    assert_equivalent(
        &Workload::Cf {
            iterations: 1,
            features: 8,
        },
        &graph,
    );
}

/// Chunk-boundary and backpressure edges: a transport squeezed down to
/// 3-record chunks and a single chunk in flight forces constant flushes,
/// free-list recycling, and producer blocking — and must still be
/// bit-identical to serial at both pipelined lane counts.
#[test]
fn tiny_chunks_and_minimum_depth_stay_bit_identical() {
    let tiny = LaneTuning {
        chunk_records: 3,
        depth: 1,
    };
    let graph = rmat(8, 8, RmatParams::default(), 44);
    let workload = Workload::Bfs { root: 0 };
    for config in [SchemeId::CONV_4K, SchemeId::DVM_PE_PLUS, SchemeId::DVM_BM] {
        let serial = observe(config, &workload, &graph, 1);
        for lanes in 2..=dvm_accel::MAX_LANES {
            let laned = observe_tuned(config, &workload, &graph, lanes, tiny);
            assert_matches(
                &serial,
                &laned,
                &format!("{config} @ {lanes} lanes, tiny transport"),
            );
        }
    }
}

/// `run_pipelined` (the dynamic-dispatch entry) honours the lane count.
#[test]
fn dynamic_entry_runs_three_lanes() {
    let graph = rmat(8, 8, RmatParams::default(), 45);
    let workload = Workload::PageRank { iterations: 1 };
    let config = SchemeId::CONV_2M;
    let serial = observe(config, &workload, &graph, 1);

    let mut os = os_for(config);
    let pid = os.spawn().unwrap();
    let g = layout::load_graph(&mut os, pid, &graph, workload.prop_stride()).unwrap();
    let mut iommu = Iommu::new(config, EnergyParams::default());
    let mut dram = Dram::new(DramConfig::default());
    let pt = os.process(pid).unwrap().page_table;
    let result = run_pipelined(
        &workload,
        &g,
        LaneParts {
            iommu: &mut iommu,
            pt: &pt,
            bitmap: None,
            mem: &mut os.machine.mem,
            dram: &mut dram,
        },
        &AccelConfig::default(),
        3,
    )
    .unwrap();
    assert_eq!(serial.result, format!("{result:?}"));
}
