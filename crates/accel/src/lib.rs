//! A Graphicionado-style graph-processing accelerator model (Ham et al.,
//! MICRO'16), the accelerator the paper evaluates DVM on (§6.1): eight
//! processing engines with single-cycle pipeline stages, no scratchpad,
//! streaming a CSR graph out of shared memory through the IOMMU.
//!
//! The four workloads of the paper — BFS, PageRank, SSSP and
//! Collaborative Filtering — execute *functionally* against simulated
//! physical memory via the process's page tables, so every result can be
//! checked against the host references in [`reference`], while every
//! access is timed by the configured memory-management scheme.
//!
//! # Examples
//!
//! ```no_run
//! use dvm_accel::{layout, run, AccelConfig, Workload};
//! use dvm_energy::EnergyParams;
//! use dvm_graph::Dataset;
//! use dvm_mem::{Dram, DramConfig};
//! use dvm_mmu::{Iommu, MemSystem, SchemeId};
//! use dvm_os::{Os, OsConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut os = Os::new(OsConfig::default());
//! let pid = os.spawn()?;
//! let graph = Dataset::Flickr.generate(16);
//! let workload = Workload::Bfs { root: 0 };
//! let g = layout::load_graph(&mut os, pid, &graph, workload.prop_stride())?;
//!
//! let mut iommu = Iommu::new(SchemeId::DVM_PE_PLUS, EnergyParams::default());
//! let mut dram = Dram::new(DramConfig::default());
//! // `PageTable` and `PermBitmap` are small Copy handles; copying them out
//! // lets the memory system borrow `os.machine.mem` mutably.
//! let pt = os.process(pid)?.page_table;
//! let bitmap = os.bitmap;
//! let mut sys = MemSystem::new(&mut iommu, &pt, bitmap.as_ref(), &mut os.machine.mem, &mut dram);
//! let result = run(&workload, &g, &mut sys, &AccelConfig::default())?;
//! println!("BFS took {} cycles", result.cycles);
//! # Ok(())
//! # }
//! ```

pub mod layout;
pub mod reference;
pub mod run;
pub mod transport;

pub use layout::{load_graph, GraphInMemory, EDGE_BYTES};
pub use run::{
    dump_props_f32, dump_props_u32, effective_lanes, effective_lanes_with_jobs, run, run_pipelined,
    run_pipelined_via, run_via, AccelConfig, LaneParts, RunResult, Workload, BFS_INF, MAX_LANES,
};
pub use transport::LaneTuning;
