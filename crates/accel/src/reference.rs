//! Host-side reference implementations used to verify the accelerator's
//! functional results. BFS and SSSP use textbook algorithms (so agreement
//! is meaningful); PageRank and CF mirror the canonical CSR-order float
//! arithmetic the accelerator performs.

use crate::run::{BFS_INF, CF_LEARNING_RATE, CF_REGULARIZATION, DAMPING};
use dvm_graph::Graph;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// BFS levels from `root` (unreached = [`BFS_INF`]).
pub fn bfs_levels(graph: &Graph, root: u32) -> Vec<u32> {
    let mut levels = vec![BFS_INF; graph.num_vertices() as usize];
    levels[root as usize] = 0;
    let mut queue = VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        let next = levels[v as usize] + 1;
        for e in graph.out_edges(v) {
            if levels[e.dst as usize] == BFS_INF {
                levels[e.dst as usize] = next;
                queue.push_back(e.dst);
            }
        }
    }
    levels
}

/// PageRank after `iterations` sweeps, mirroring the accelerator's
/// scatter/apply arithmetic in CSR order (bitwise identical).
pub fn pagerank(graph: &Graph, iterations: u32) -> Vec<f32> {
    let n = graph.num_vertices() as usize;
    let mut rank = vec![1.0f32 / n as f32; n];
    let mut acc = vec![0.0f32; n];
    for _ in 0..iterations {
        for v in 0..graph.num_vertices() {
            let deg = graph.out_degree(v);
            if deg == 0 {
                continue;
            }
            let contrib = rank[v as usize] / deg as f32;
            for e in graph.out_edges(v) {
                acc[e.dst as usize] += contrib;
            }
        }
        for v in 0..n {
            rank[v] = (1.0 - DAMPING) / n as f32 + DAMPING * acc[v];
            acc[v] = 0.0;
        }
    }
    rank
}

#[derive(PartialEq)]
struct HeapItem(f32, u32);

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance.
        other.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra shortest-path distances from `root` (unreached = infinity).
pub fn sssp_distances(graph: &Graph, root: u32) -> Vec<f32> {
    let mut dist = vec![f32::INFINITY; graph.num_vertices() as usize];
    dist[root as usize] = 0.0;
    let mut heap = BinaryHeap::from([HeapItem(0.0, root)]);
    while let Some(HeapItem(d, v)) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for e in graph.out_edges(v) {
            let candidate = d + e.weight;
            if candidate < dist[e.dst as usize] {
                dist[e.dst as usize] = candidate;
                heap.push(HeapItem(candidate, e.dst));
            }
        }
    }
    dist
}

/// CF factor vectors after `iterations` SGD sweeps in edge order,
/// mirroring the accelerator's update arithmetic. Returned flattened as
/// `features` floats per vertex.
pub fn cf_factors(graph: &Graph, iterations: u32, features: u32) -> Vec<f32> {
    let k = features as usize;
    let n = graph.num_vertices() as usize;
    let mut factors = vec![0.0f32; n * k];
    for v in 0..n {
        for f in 0..k {
            let seed = ((v as u64 * 31 + f as u64 * 7) % 97) as f32;
            factors[v * k + f] = 0.05 + seed / 1000.0;
        }
    }
    for _ in 0..iterations {
        for e in graph.edges() {
            let (u, m) = (e.src as usize, e.dst as usize);
            let uvec: Vec<f32> = factors[u * k..u * k + k].to_vec();
            let mvec: Vec<f32> = factors[m * k..m * k + k].to_vec();
            let err = e.weight - uvec.iter().zip(&mvec).map(|(a, b)| a * b).sum::<f32>();
            for f in 0..k {
                factors[u * k + f] =
                    uvec[f] + CF_LEARNING_RATE * (err * mvec[f] - CF_REGULARIZATION * uvec[f]);
                factors[m * k + f] =
                    mvec[f] + CF_LEARNING_RATE * (err * uvec[f] - CF_REGULARIZATION * mvec[f]);
            }
        }
    }
    factors
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_graph::Edge;

    fn chain() -> Graph {
        Graph::from_edges(
            4,
            vec![
                Edge {
                    src: 0,
                    dst: 1,
                    weight: 2.0,
                },
                Edge {
                    src: 1,
                    dst: 2,
                    weight: 3.0,
                },
                Edge {
                    src: 0,
                    dst: 2,
                    weight: 10.0,
                },
            ],
        )
    }

    #[test]
    fn bfs_chain() {
        let levels = bfs_levels(&chain(), 0);
        assert_eq!(levels, vec![0, 1, 1, BFS_INF]);
    }

    #[test]
    fn sssp_prefers_shorter_path() {
        let dist = sssp_distances(&chain(), 0);
        assert_eq!(dist[0], 0.0);
        assert_eq!(dist[1], 2.0);
        assert_eq!(dist[2], 5.0, "0->1->2 beats the direct 10.0 edge");
        assert!(dist[3].is_infinite());
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = dvm_graph::rmat(8, 8, dvm_graph::RmatParams::default(), 5);
        let ranks = pagerank(&g, 10);
        let total: f32 = ranks.iter().sum();
        // Rank mass leaks through zero-degree vertices, so the sum is <= 1.
        assert!(total > 0.2 && total <= 1.01, "total {total}");
        assert!(ranks.iter().all(|r| *r > 0.0));
    }

    #[test]
    fn cf_reduces_error() {
        let g = dvm_graph::to_bipartite(
            &dvm_graph::rmat(8, 8, dvm_graph::RmatParams::default(), 6),
            128,
            32,
        );
        let k = 8u32;
        let before = cf_factors(&g, 0, k);
        let after = cf_factors(&g, 4, k);
        let rmse = |factors: &[f32]| {
            let mut sum = 0.0f64;
            for e in g.edges() {
                let (u, m) = (e.src as usize, e.dst as usize);
                let pred: f32 = (0..k as usize)
                    .map(|f| factors[u * 8 + f] * factors[m * 8 + f])
                    .sum();
                sum += f64::from((e.weight - pred).powi(2));
            }
            (sum / g.num_edges() as f64).sqrt()
        };
        assert!(
            rmse(&after) < rmse(&before),
            "SGD must reduce rating error: {} vs {}",
            rmse(&after),
            rmse(&before)
        );
    }
}
