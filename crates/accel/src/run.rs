//! The Graphicionado-style execution model: 8 processing engines stream
//! the graph through the IOMMU, with per-engine cycle accounting.
//!
//! Timing model (see DESIGN.md §3): each pipeline stage costs one cycle
//! (Table 2: "computation performed in each stage of a processing engine
//! is executed in one cycle") and every memory operation adds its
//! end-to-end latency from the shared [`MemSystem`] — validation plus
//! data fetch, overlapped for DVM-PE+ reads. Edges are sharded across
//! engines by destination vertex (Graphicionado's destination
//! partitioning); source-side stages run on the source shard. The
//! workload's execution time is the maximum engine clock.
//!
//! Host-side preparation (array initialization) and the accelerator's
//! small on-chip state (frontier membership bits, scalar counters) are
//! functional-only and untimed; all graph-data traffic is timed.
//!
//! # Lanes
//!
//! One simulation unit can optionally split into up to three decoupled
//! lanes (see DESIGN.md "Lane partitioning"), each owning a disjoint set
//! of machine state and streaming records to the next over the recycling
//! chunk transport in [`crate::transport`]:
//!
//! - the *functional* lane executes the workload — resolving control flow
//!   and data against live memory — while recording the charged access
//!   stream `(va, kind, engine)`;
//! - the *translate* lane owns the IOMMU: it replays the access stream in
//!   order through TLB/PT-cache/walker against a snapshot of the
//!   translation frames, computes each access's end-to-end latency, and
//!   emits the DRAM transaction stream (walker fetches plus one pipelined
//!   data access per access);
//! - the *memory* lane owns the DRAM counters and the engine clocks: it
//!   replays the transaction stream into the real [`Dram`] and charges
//!   each access's latency to its engine.
//!
//! Every stream preserves the exact serial access order and every counter
//! has exactly one owner, so results are byte-identical to the fused
//! single-lane path by construction. [`run_via`] is the fused path;
//! [`run_pipelined_via`] runs the two-lane (functional | fused-timing) or
//! three-lane (functional | translate | memory) pipeline.

use crate::layout::GraphInMemory;
use crate::transport::{self, ChunkSender, LaneTuning, Received};
use dvm_mem::{Dram, DramClass, PhysMem};
use dvm_mmu::{dispatch, translation_snapshot, FuncView, Iommu, MemSystem, SchemeDispatch};
use dvm_pagetable::{PageTable, PermBitmap};
use dvm_sim::{Cycles, Histogram};
use dvm_types::{AccessKind, Fault, FaultKind, Permission, PhysAddr, VirtAddr, PAGE_SIZE};
use std::marker::PhantomData;

/// Accelerator hardware parameters (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelConfig {
    /// Processing engines running in parallel.
    pub engines: u32,
    /// Cycles per pipeline stage.
    pub stage_cycles: Cycles,
    /// Concurrent walks the shared IOMMU walker / DAV engine sustains.
    /// Translation work beyond this concurrency queues, so a scheme whose
    /// aggregate walk time exceeds the engines' own time becomes
    /// walker-bound — the effect that makes high-miss-rate conventional
    /// translation so expensive for an 8-engine accelerator.
    pub walker_ports: u32,
}

impl Default for AccelConfig {
    fn default() -> Self {
        Self {
            engines: 8,
            stage_cycles: 1,
            walker_ports: 4,
        }
    }
}

/// Result of one accelerator run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Execution time: the maximum engine clock, or the shared walker's
    /// occupancy when translation is the bottleneck.
    pub cycles: Cycles,
    /// Per-engine clocks.
    pub engine_cycles: Vec<Cycles>,
    /// Edges processed (including re-relaxations).
    pub edges_processed: u64,
    /// Iterations (BFS/SSSP levels, PR/CF sweeps) executed.
    pub iterations: u32,
    /// Aggregate cycles the shared walker was busy, divided by its ports.
    pub walker_cycles: Cycles,
    /// Distribution of per-access end-to-end latencies.
    pub latency_hist: Histogram,
}

/// One of the paper's four graph workloads (§6.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Breadth-first search from a root vertex.
    Bfs {
        /// Search root.
        root: u32,
    },
    /// PageRank, a fixed number of sweeps.
    PageRank {
        /// Sweeps over all edges.
        iterations: u32,
    },
    /// Single-source shortest path (frontier Bellman-Ford).
    Sssp {
        /// Source vertex.
        root: u32,
        /// Convergence bound.
        max_iterations: u32,
    },
    /// Collaborative filtering by SGD matrix factorization over a
    /// bipartite rating graph.
    Cf {
        /// SGD sweeps.
        iterations: u32,
        /// Feature-vector length per vertex.
        features: u32,
    },
}

impl Workload {
    /// Display name used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Bfs { .. } => "BFS",
            Workload::PageRank { .. } => "PageRank",
            Workload::Sssp { .. } => "SSSP",
            Workload::Cf { .. } => "CF",
        }
    }

    /// Bytes per vertex property for this workload.
    pub fn prop_stride(&self) -> u64 {
        match self {
            Workload::Cf { features, .. } => 4 * *features as u64,
            _ => 4,
        }
    }

    /// Paper defaults: BFS/SSSP from vertex 0, 2 PageRank sweeps, one
    /// 32-feature CF sweep (matrix-factorization kernels typically use
    /// ~30 latent features; the vector size also sets CF's TLB footprint).
    pub fn default_set() -> [Workload; 4] {
        [
            Workload::Bfs { root: 0 },
            Workload::PageRank { iterations: 2 },
            Workload::Sssp {
                root: 0,
                max_iterations: 64,
            },
            Workload::Cf {
                iterations: 1,
                features: 32,
            },
        ]
    }
}

impl core::fmt::Display for Workload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// PageRank damping factor.
pub const DAMPING: f32 = 0.85;
/// CF SGD learning rate.
pub const CF_LEARNING_RATE: f32 = 0.002;
/// CF SGD regularization.
pub const CF_REGULARIZATION: f32 = 0.05;
/// Unreached BFS level.
pub const BFS_INF: u32 = u32::MAX;

/// The lane pipeline has at most three stages (functional | translate |
/// memory), so any requested lane count above this clamps down to it.
pub const MAX_LANES: u32 = 3;

/// Resolve a `--lanes` request for a process running one unit at a time:
/// `0` means auto (as many as the host can run concurrently, at most
/// [`MAX_LANES`]), `1` the fused serial path, and anything above
/// [`MAX_LANES`] clamps.
pub fn effective_lanes(lanes: u32) -> u32 {
    effective_lanes_with_jobs(lanes, 1)
}

/// [`effective_lanes`] for a process that also runs `jobs` sweep workers
/// concurrently: auto mode divides the host's cores among the workers
/// first, so `jobs × lanes` never oversubscribes the machine. Explicit
/// lane counts are honoured (clamped to [`MAX_LANES`]) regardless of
/// `jobs`.
pub fn effective_lanes_with_jobs(lanes: u32, jobs: u32) -> u32 {
    match lanes {
        0 => auto_lanes(
            std::thread::available_parallelism()
                .map(|n| n.get() as u32)
                .unwrap_or(1),
            jobs,
        ),
        n => n.min(MAX_LANES),
    }
}

/// The auto heuristic, separated from the host probe for testability:
/// each of `jobs` workers gets its fair share of `cores`, floored at one
/// lane (fused serial) and capped at the pipeline depth.
fn auto_lanes(cores: u32, jobs: u32) -> u32 {
    (cores / jobs.max(1)).clamp(1, MAX_LANES)
}

/// Destination sharding: hash the vertex id so RMAT's low-id hubs do not
/// all land on engine 0 (Graphicionado interleaves destinations).
#[inline]
fn shard_of(v: u32, engines: usize) -> usize {
    (v.wrapping_mul(0x9E37_79B1) >> 16) as usize % engines
}

struct Engines {
    clocks: Vec<Cycles>,
    stage: Cycles,
    rr: usize,
    walker_ports: u32,
    walker_busy_at_start: Cycles,
    latency_hist: Histogram,
}

impl Engines {
    fn new(cfg: &AccelConfig, walker_busy_at_start: Cycles) -> Self {
        assert!(cfg.engines > 0, "need at least one engine");
        assert!(cfg.walker_ports > 0, "need at least one walker port");
        Self {
            clocks: vec![0; cfg.engines as usize],
            stage: cfg.stage_cycles,
            rr: 0,
            walker_ports: cfg.walker_ports,
            walker_busy_at_start,
            latency_hist: Histogram::new("access_latency"),
        }
    }

    #[inline]
    fn shard(&self, v: u32) -> usize {
        shard_of(v, self.clocks.len())
    }

    /// Streaming stages are interleaved round-robin across engines.
    #[inline]
    fn next_stream(&mut self) -> usize {
        self.rr = (self.rr + 1) % self.clocks.len();
        self.rr
    }

    #[inline]
    fn charge(&mut self, engine: usize, mem_latency: Cycles) {
        self.latency_hist.sample(mem_latency);
        self.clocks[engine] += mem_latency + self.stage;
    }

    fn result(self, walker_busy_now: Cycles, edges_processed: u64, iterations: u32) -> RunResult {
        let walker_cycles =
            (walker_busy_now - self.walker_busy_at_start) / self.walker_ports as u64;
        let engine_max = self.clocks.iter().copied().max().unwrap_or(0);
        RunResult {
            cycles: engine_max.max(walker_cycles),
            engine_cycles: self.clocks,
            edges_processed,
            iterations,
            walker_cycles,
            latency_hist: self.latency_hist,
        }
    }
}

// ---------------------------------------------------------------------
// Untimed host/on-chip helpers (functional only).
// ---------------------------------------------------------------------

/// Functional address-space access: translation plus raw physical memory.
/// Implemented by the fused [`MemSystem`] and by the functional lane's
/// [`FuncView`], so the untimed helpers below have a single definition.
trait Func {
    fn xlate(&self, va: VirtAddr) -> Option<(PhysAddr, Permission)>;
    fn ram(&self) -> &PhysMem;
    fn ram_mut(&mut self) -> &mut PhysMem;
}

impl Func for MemSystem<'_> {
    #[inline]
    fn xlate(&self, va: VirtAddr) -> Option<(PhysAddr, Permission)> {
        self.untimed_translate(va)
    }
    #[inline]
    fn ram(&self) -> &PhysMem {
        self.mem
    }
    #[inline]
    fn ram_mut(&mut self) -> &mut PhysMem {
        self.mem
    }
}

impl Func for FuncView<'_> {
    #[inline]
    fn xlate(&self, va: VirtAddr) -> Option<(PhysAddr, Permission)> {
        self.translate(va)
    }
    #[inline]
    fn ram(&self) -> &PhysMem {
        self.mem
    }
    #[inline]
    fn ram_mut(&mut self) -> &mut PhysMem {
        self.mem
    }
}

fn peek_u32<F: Func>(f: &F, va: VirtAddr) -> u32 {
    let (pa, _) = f
        .xlate(va)
        .unwrap_or_else(|| panic!("untimed read of unmapped {va}"));
    f.ram().read_u32(pa)
}

fn peek_f32<F: Func>(f: &F, va: VirtAddr) -> f32 {
    f32::from_bits(peek_u32(f, va))
}

fn poke_u32<F: Func>(f: &mut F, va: VirtAddr, value: u32) {
    let (pa, _) = f
        .xlate(va)
        .unwrap_or_else(|| panic!("untimed write of unmapped {va}"));
    f.ram_mut().write_u32(pa, value);
}

fn poke_f32<F: Func>(f: &mut F, va: VirtAddr, value: f32) {
    poke_u32(f, va, value.to_bits());
}

/// Largest factor vector (in bytes) the batched helpers handle on the
/// stack; larger vectors fall back to per-lane accesses.
const VEC_BUF_BYTES: usize = 512;

/// Untimed read of `k` contiguous f32 lanes with a single translation
/// (the vector is page-contained: strides divide the page size).
fn peek_vec<F: Func>(f: &F, va: VirtAddr, k: u64, out: &mut Vec<f32>) {
    let (pa, _) = f
        .xlate(va)
        .unwrap_or_else(|| panic!("untimed read of unmapped {va}"));
    out.clear();
    let len = k as usize * 4;
    if len <= VEC_BUF_BYTES {
        let mut buf = [0u8; VEC_BUF_BYTES];
        f.ram().read_bytes(pa, &mut buf[..len]);
        out.extend(
            buf[..len]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap())),
        );
    } else {
        for lane in 0..k {
            out.push(f.ram().read_f32(pa + lane * 4));
        }
    }
}

/// Untimed write of lanes `1..k` (lane 0 is written by the timed store).
fn poke_vec_tail<F: Func>(f: &mut F, va: VirtAddr, values: &[f32]) {
    let (pa, _) = f
        .xlate(va)
        .unwrap_or_else(|| panic!("untimed write of unmapped {va}"));
    let tail = &values[1..];
    let len = tail.len() * 4;
    if len <= VEC_BUF_BYTES {
        let mut buf = [0u8; VEC_BUF_BYTES];
        for (chunk, v) in buf.chunks_exact_mut(4).zip(tail) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        f.ram_mut().write_bytes(pa + 4, &buf[..len]);
    } else {
        for (lane, v) in values.iter().enumerate().skip(1) {
            f.ram_mut().write_f32(pa + lane as u64 * 4, *v);
        }
    }
}

/// Host-side memset of a `u32` array (page-chunked, untimed).
fn memset_u32<F: Func>(f: &mut F, base: VirtAddr, count: u64, value: u32) {
    // One full page of the fill pattern, sliced per chunk. `base` is
    // 4-aligned and pages are 4-aligned, so chunks are whole words.
    let mut buf = Vec::with_capacity(PAGE_SIZE as usize);
    for _ in 0..PAGE_SIZE / 4 {
        buf.extend_from_slice(&value.to_le_bytes());
    }
    let total = count * 4;
    let mut done = 0u64;
    while done < total {
        let va = base + done;
        let in_page = PAGE_SIZE - (va.raw() % PAGE_SIZE);
        let n = in_page.min(total - done);
        let (pa, _) = f.xlate(va).expect("mapped");
        f.ram_mut().write_bytes(pa, &buf[..n as usize]);
        done += n;
    }
}

/// Untimed dump of the property array as `u32`s (for verification).
pub fn dump_props_u32(sys: &MemSystem, g: &GraphInMemory) -> Vec<u32> {
    (0..g.num_vertices)
        .map(|v| peek_u32(sys, g.prop_entry(v)))
        .collect()
}

/// Untimed dump of the property array as `f32`s (for verification).
pub fn dump_props_f32(sys: &MemSystem, g: &GraphInMemory) -> Vec<f32> {
    (0..g.num_vertices)
        .map(|v| peek_f32(sys, g.prop_entry(v)))
        .collect()
}

// ---------------------------------------------------------------------
// The port: what a workload skeleton needs from the machine.
// ---------------------------------------------------------------------

/// Everything a workload skeleton does to the machine: timed accesses,
/// engine selection, cycle charging, and functional (untimed) access via
/// [`Func`]. A timed access leaves its cost *pending*; the skeleton picks
/// the engine — often from the value just read — and settles it with
/// [`charge`](Port::charge). Exactly one charge follows every successful
/// timed access.
///
/// Two implementations: [`FusedPort`] executes and times in one pass
/// (the classic path), [`TracePort`] executes functionally and streams
/// the address trace to the timing lane.
trait Port {
    type F: Func;
    fn func(&self) -> &Self::F;
    fn func_mut(&mut self) -> &mut Self::F;
    fn read_u32(&mut self, va: VirtAddr) -> Result<u32, Fault>;
    fn read_u64(&mut self, va: VirtAddr) -> Result<u64, Fault>;
    fn read_f32(&mut self, va: VirtAddr) -> Result<f32, Fault>;
    fn write_u32(&mut self, va: VirtAddr, value: u32) -> Result<(), Fault>;
    fn write_f32(&mut self, va: VirtAddr, value: f32) -> Result<(), Fault>;
    fn charge(&mut self, engine: usize);
    fn shard(&self, v: u32) -> usize;
    fn next_stream(&mut self) -> usize;
}

/// The fused single-lane port: every access validates, times and moves
/// data in one step, exactly as the pre-lane simulator did.
struct FusedPort<'s, 'a, D: SchemeDispatch> {
    sys: &'s mut MemSystem<'a>,
    engines: Engines,
    pending: Cycles,
    _dispatch: PhantomData<D>,
}

impl<'a, D: SchemeDispatch> Port for FusedPort<'_, 'a, D> {
    type F = MemSystem<'a>;

    #[inline]
    fn func(&self) -> &MemSystem<'a> {
        self.sys
    }
    #[inline]
    fn func_mut(&mut self) -> &mut MemSystem<'a> {
        self.sys
    }

    #[inline]
    fn read_u32(&mut self, va: VirtAddr) -> Result<u32, Fault> {
        let (value, lat) = self.sys.read_u32_via::<D>(va)?;
        self.pending = lat;
        Ok(value)
    }
    #[inline]
    fn read_u64(&mut self, va: VirtAddr) -> Result<u64, Fault> {
        let (value, lat) = self.sys.read_u64_via::<D>(va)?;
        self.pending = lat;
        Ok(value)
    }
    #[inline]
    fn read_f32(&mut self, va: VirtAddr) -> Result<f32, Fault> {
        let (value, lat) = self.sys.read_f32_via::<D>(va)?;
        self.pending = lat;
        Ok(value)
    }
    #[inline]
    fn write_u32(&mut self, va: VirtAddr, value: u32) -> Result<(), Fault> {
        self.pending = self.sys.write_u32_via::<D>(va, value)?;
        Ok(())
    }
    #[inline]
    fn write_f32(&mut self, va: VirtAddr, value: f32) -> Result<(), Fault> {
        self.pending = self.sys.write_f32_via::<D>(va, value)?;
        Ok(())
    }
    #[inline]
    fn charge(&mut self, engine: usize) {
        self.engines.charge(engine, self.pending);
    }
    #[inline]
    fn shard(&self, v: u32) -> usize {
        self.engines.shard(v)
    }
    #[inline]
    fn next_stream(&mut self) -> usize {
        self.engines.next_stream()
    }
}

// ---------------------------------------------------------------------
// The trace port and the lane pipelines.
// ---------------------------------------------------------------------

/// One timed access, in program order (functional → translate stream).
#[derive(Clone, Copy)]
struct Record {
    va: VirtAddr,
    kind: AccessKind,
    engine: u8,
}

/// The functional lane's outcome, delivered after its last chunk.
#[derive(Clone, Copy)]
struct FuncVerdict {
    edges_processed: u64,
    iterations: u32,
}

/// One DRAM transaction, in program order (translate → memory stream).
/// The translate lane owns the IOMMU and the DRAM latency *constants*;
/// the memory lane owns the DRAM *counters* and the engine clocks.
#[derive(Clone, Copy)]
enum MemEvent {
    /// A full-latency transaction (walker fetch, squashed preload): it
    /// counts against DRAM but charges no engine — its latency is
    /// already folded into its access's [`MemEvent::Data`] total.
    Fetch { pa: PhysAddr, kind: AccessKind },
    /// The pipelined data transaction ending one successful access,
    /// carrying the engine to charge and the translate-computed
    /// end-to-end latency of the whole access.
    Data {
        pa: PhysAddr,
        kind: AccessKind,
        engine: u8,
        latency: Cycles,
    },
}

/// The translate lane's outcome: the functional verdict plus the final
/// walker-occupancy counter the memory lane folds into the result.
#[derive(Clone, Copy)]
struct TimingVerdict {
    edges_processed: u64,
    iterations: u32,
    walker_busy: Cycles,
}

/// The functional lane's port: accesses resolve against live memory via
/// [`FuncView`] (no timing state touched), and the charged access stream
/// is batched downstream in order over the recycling chunk transport.
struct TracePort<'s> {
    view: FuncView<'s>,
    tx: ChunkSender<Record, FuncVerdict>,
    num_engines: usize,
    rr: usize,
    pending: Option<(VirtAddr, AccessKind)>,
    /// Engine of the most recent charge. A faulting access is forwarded
    /// before the skeleton picks its engine (the fault pre-empts the
    /// charge), so its record carries the last attributed engine — the
    /// engine mid-burst at the fault — rather than a bogus constant.
    last_engine: u8,
}

impl TracePort<'_> {
    /// Functional half of a timed access: translate, check permissions,
    /// and remember the access until the skeleton charges it. A failure
    /// is still forwarded (the downstream lane must replay it to raise
    /// the authoritative fault) before unwinding with a placeholder.
    fn access(&mut self, va: VirtAddr, kind: AccessKind) -> Result<PhysAddr, Fault> {
        if self.tx.is_dead() {
            // The downstream lane hung up (it faulted, and its fault is
            // the authoritative outcome) — unwind without sending more.
            return Err(Fault {
                va,
                access: kind,
                kind: FaultKind::NotMapped,
            });
        }
        match self.view.translate(va) {
            Some((pa, perms)) if perms.allows(kind) => {
                debug_assert!(self.pending.is_none(), "timed access without a charge");
                self.pending = Some((va, kind));
                Ok(pa)
            }
            outcome => {
                self.tx.push(Record {
                    va,
                    kind,
                    engine: self.last_engine,
                });
                self.tx.flush();
                Err(Fault {
                    va,
                    access: kind,
                    kind: if outcome.is_none() {
                        FaultKind::NotMapped
                    } else {
                        FaultKind::Protection
                    },
                })
            }
        }
    }

    /// Functional execution succeeded: flush the tail of the trace and
    /// hand the downstream lane the functional outcome.
    fn finish(self, edges_processed: u64, iterations: u32) {
        self.tx.finish(FuncVerdict {
            edges_processed,
            iterations,
        });
    }
}

impl<'s> Port for TracePort<'s> {
    type F = FuncView<'s>;

    #[inline]
    fn func(&self) -> &FuncView<'s> {
        &self.view
    }
    #[inline]
    fn func_mut(&mut self) -> &mut FuncView<'s> {
        &mut self.view
    }

    #[inline]
    fn read_u32(&mut self, va: VirtAddr) -> Result<u32, Fault> {
        let pa = self.access(va, AccessKind::Read)?;
        Ok(self.view.mem.read_u32(pa))
    }
    #[inline]
    fn read_u64(&mut self, va: VirtAddr) -> Result<u64, Fault> {
        let pa = self.access(va, AccessKind::Read)?;
        Ok(self.view.mem.read_u64(pa))
    }
    #[inline]
    fn read_f32(&mut self, va: VirtAddr) -> Result<f32, Fault> {
        let pa = self.access(va, AccessKind::Read)?;
        Ok(self.view.mem.read_f32(pa))
    }
    #[inline]
    fn write_u32(&mut self, va: VirtAddr, value: u32) -> Result<(), Fault> {
        let pa = self.access(va, AccessKind::Write)?;
        self.view.mem.write_u32(pa, value);
        Ok(())
    }
    #[inline]
    fn write_f32(&mut self, va: VirtAddr, value: f32) -> Result<(), Fault> {
        let pa = self.access(va, AccessKind::Write)?;
        self.view.mem.write_f32(pa, value);
        Ok(())
    }
    #[inline]
    fn charge(&mut self, engine: usize) {
        let (va, kind) = self
            .pending
            .take()
            .expect("charge without a pending access");
        self.last_engine = engine as u8;
        self.tx.push(Record {
            va,
            kind,
            engine: engine as u8,
        });
    }
    #[inline]
    fn shard(&self, v: u32) -> usize {
        shard_of(v, self.num_engines)
    }
    #[inline]
    fn next_stream(&mut self) -> usize {
        self.rr = (self.rr + 1) % self.num_engines;
        self.rr
    }
}

// ---------------------------------------------------------------------
// Timed primitives.
// ---------------------------------------------------------------------

/// Timed read of an edge record; returns `(src, dst, weight)` with the
/// cost pending. One timed transaction covers the 12-byte record (it fits
/// a 64-byte line); the weight lane is completed functionally.
#[inline]
fn read_edge<P: Port>(port: &mut P, g: &GraphInMemory, i: u64) -> Result<(u32, u32, f32), Fault> {
    let va = g.edge_entry(i);
    let srcdst = port.read_u64(va)?;
    let src = srcdst as u32;
    let dst = (srcdst >> 32) as u32;
    let weight = peek_f32(port.func(), va + 8);
    Ok((src, dst, weight))
}

// ---------------------------------------------------------------------
// The runner.
// ---------------------------------------------------------------------

/// Execute `workload` over the in-memory graph `g` through the memory
/// system `sys`.
///
/// # Errors
///
/// Propagates the first [`Fault`] the IOMMU raises (the paper's design
/// raises it on the host CPU and aborts the offload).
///
/// # Panics
///
/// Panics if `g.prop_stride` does not match the workload's stride.
pub fn run(
    workload: &Workload,
    g: &GraphInMemory,
    sys: &mut MemSystem<'_>,
    cfg: &AccelConfig,
) -> Result<RunResult, Fault> {
    run_via::<dispatch::Dyn>(workload, g, sys, cfg)
}

/// [`run`] with a compile-time dispatch token (see
/// [`SchemeDispatch`]): `D` must stand for the scheme `sys.iommu` was
/// built for. Monomorphizing the workload loops over the builtin schemes
/// is worth 1.5-2x on translation-heavy units; the sweep engine selects
/// the token, everything else should call [`run`].
///
/// # Errors
///
/// Propagates the first [`Fault`] the IOMMU raises.
///
/// # Panics
///
/// Panics if `g.prop_stride` does not match the workload's stride.
pub fn run_via<D: SchemeDispatch>(
    workload: &Workload,
    g: &GraphInMemory,
    sys: &mut MemSystem<'_>,
    cfg: &AccelConfig,
) -> Result<RunResult, Fault> {
    let engines = Engines::new(cfg, sys.iommu.stats.walker_busy.get());
    let mut port = FusedPort::<D> {
        sys,
        engines,
        pending: 0,
        _dispatch: PhantomData,
    };
    let (edges_processed, iterations) = exec(workload, &mut port, g)?;
    let walker_busy_now = port.sys.iommu.stats.walker_busy.get();
    Ok(port
        .engines
        .result(walker_busy_now, edges_processed, iterations))
}

/// The borrows [`run_pipelined_via`] splits between its two lanes: the
/// timing lane takes the IOMMU and DRAM (plus a snapshot of the
/// translation frames), the functional lane keeps live physical memory.
#[derive(Debug)]
pub struct LaneParts<'a> {
    /// The IOMMU validating accesses (timing lane).
    pub iommu: &'a mut Iommu,
    /// Page table of the offloading process (shared, immutable).
    pub pt: &'a PageTable,
    /// DVM-BM permission bitmap, when the configuration needs one.
    pub bitmap: Option<&'a PermBitmap>,
    /// Live simulated physical memory (functional lane).
    pub mem: &'a mut PhysMem,
    /// DRAM timing model (timing lane).
    pub dram: &'a mut Dram,
}

/// [`run_pipelined_via`] with runtime scheme dispatch.
///
/// # Errors
///
/// Propagates the first [`Fault`] the IOMMU raises.
pub fn run_pipelined(
    workload: &Workload,
    g: &GraphInMemory,
    parts: LaneParts<'_>,
    cfg: &AccelConfig,
    lanes: u32,
) -> Result<RunResult, Fault> {
    run_pipelined_via::<dispatch::Dyn>(workload, g, parts, cfg, lanes)
}

/// Pipelined execution across `lanes` lanes (`2` or `3`; resolve a CLI
/// request with [`effective_lanes`] first and call [`run_via`] for `1`).
/// The functional lane runs the workload on this thread against live
/// memory, streaming each charged access; with 2 lanes a single timing
/// lane replays the stream in order through the real IOMMU and DRAM on a
/// scoped thread, walking a snapshot of the translation frames; with 3
/// the timing work splits at the IOMMU→DRAM boundary into a translate
/// lane and a memory lane (see the module docs). Page tables are
/// immutable during a run and every stream preserves serial order, so
/// the replay observes exactly the fused path's machine state — results,
/// counters, histograms and energy are byte-identical to [`run_via`].
///
/// # Errors
///
/// Propagates the first [`Fault`] the IOMMU raises (raised by the lane
/// owning the IOMMU, which is authoritative).
///
/// # Panics
///
/// Panics if `g.prop_stride` does not match the workload's stride, if
/// `cfg.engines` exceeds 256 (trace records hold engine ids in a byte),
/// or if `lanes` is outside `2..=MAX_LANES`.
pub fn run_pipelined_via<D: SchemeDispatch>(
    workload: &Workload,
    g: &GraphInMemory,
    parts: LaneParts<'_>,
    cfg: &AccelConfig,
    lanes: u32,
) -> Result<RunResult, Fault> {
    run_pipelined_tuned_via::<D>(workload, g, parts, cfg, lanes, LaneTuning::default())
}

/// [`run_pipelined_via`] with explicit transport tuning. Tests shrink the
/// chunk size and channel depth to force chunk-boundary and backpressure
/// edges that production-sized chunks would only hit on huge units.
#[doc(hidden)]
pub fn run_pipelined_tuned_via<D: SchemeDispatch>(
    workload: &Workload,
    g: &GraphInMemory,
    parts: LaneParts<'_>,
    cfg: &AccelConfig,
    lanes: u32,
    tuning: LaneTuning,
) -> Result<RunResult, Fault> {
    assert!(
        cfg.engines <= 256,
        "trace records hold engine ids in a byte"
    );
    assert!(
        (2..=MAX_LANES).contains(&lanes),
        "pipelined path needs 2..={MAX_LANES} lanes, got {lanes}"
    );
    if lanes >= 3 {
        three_lane::<D>(workload, g, parts, cfg, tuning)
    } else {
        two_lane::<D>(workload, g, parts, cfg, tuning)
    }
}

/// Drive the functional lane on the calling thread: execute the workload
/// through a [`TracePort`], then either deliver the verdict or — on a
/// fault — drop the sender with the faulting access as the stream's last
/// record, telling the downstream lane to fault there.
fn run_functional(
    workload: &Workload,
    g: &GraphInMemory,
    pt: &PageTable,
    mem: &mut PhysMem,
    cfg: &AccelConfig,
    tx: ChunkSender<Record, FuncVerdict>,
) {
    let mut port = TracePort {
        view: FuncView::new(pt, mem),
        tx,
        num_engines: cfg.engines as usize,
        rr: 0,
        pending: None,
        last_engine: 0,
    };
    match exec(workload, &mut port, g) {
        Ok((edges_processed, iterations)) => port.finish(edges_processed, iterations),
        Err(_) => drop(port),
    }
}

/// Two lanes: functional | fused timing (IOMMU + DRAM on one thread).
fn two_lane<D: SchemeDispatch>(
    workload: &Workload,
    g: &GraphInMemory,
    parts: LaneParts<'_>,
    cfg: &AccelConfig,
    tuning: LaneTuning,
) -> Result<RunResult, Fault> {
    let LaneParts {
        iommu,
        pt,
        bitmap,
        mem,
        dram,
    } = parts;
    let mut snapshot = translation_snapshot(pt, bitmap, mem);
    let (tx, rx) = transport::channel::<Record, FuncVerdict>(tuning);
    std::thread::scope(|scope| {
        let timing = scope.spawn(move || -> Result<RunResult, Fault> {
            let mut sys = MemSystem::new(iommu, pt, bitmap, &mut snapshot, dram);
            let mut engines = Engines::new(cfg, sys.iommu.stats.walker_busy.get());
            loop {
                match rx.recv() {
                    Some(Received::Chunk(chunk)) => {
                        for rec in chunk.iter() {
                            let lat = sys.access_via::<D>(rec.va, rec.kind)?;
                            engines.charge(rec.engine as usize, lat);
                        }
                    }
                    Some(Received::Finish(FuncVerdict {
                        edges_processed,
                        iterations,
                    })) => {
                        let walker_busy_now = sys.iommu.stats.walker_busy.get();
                        return Ok(engines.result(walker_busy_now, edges_processed, iterations));
                    }
                    None => panic!("functional lane ended without a verdict"),
                }
            }
        });
        run_functional(workload, g, pt, mem, cfg, tx);
        timing.join().expect("timing lane panicked")
    })
}

/// Three lanes: functional | translate (IOMMU) | memory (DRAM counters +
/// engine clocks). The translate lane runs the full validation path
/// against a *recording* scratch [`Dram`] — DRAM latencies are pure
/// configuration constants, so the scratch instance answers latency
/// queries identically while its counters are discarded; the recorded
/// transaction stream replays into the real DRAM downstream, so every
/// DRAM counter is owned by exactly one lane and ends byte-identical to
/// the fused path.
fn three_lane<D: SchemeDispatch>(
    workload: &Workload,
    g: &GraphInMemory,
    parts: LaneParts<'_>,
    cfg: &AccelConfig,
    tuning: LaneTuning,
) -> Result<RunResult, Fault> {
    let LaneParts {
        iommu,
        pt,
        bitmap,
        mem,
        dram,
    } = parts;
    let mut snapshot = translation_snapshot(pt, bitmap, mem);
    let walker_busy_at_start = iommu.stats.walker_busy.get();
    let dram_config = dram.config();
    let (tx, rx) = transport::channel::<Record, FuncVerdict>(tuning);
    let (etx, erx) = transport::channel::<MemEvent, TimingVerdict>(tuning);
    std::thread::scope(|scope| {
        // Memory lane: counters and clocks. `None` means the stream was
        // cut short — the translate lane faulted and its Err is the
        // authoritative outcome.
        let memory = scope.spawn(move || -> Option<RunResult> {
            let mut engines = Engines::new(cfg, walker_busy_at_start);
            loop {
                match erx.recv() {
                    Some(Received::Chunk(chunk)) => {
                        for &ev in chunk.iter() {
                            match ev {
                                MemEvent::Fetch { pa, kind } => {
                                    let _ = dram.access(pa, kind);
                                }
                                MemEvent::Data {
                                    pa,
                                    kind,
                                    engine,
                                    latency,
                                } => {
                                    let _ = dram.occupancy_access(pa, kind);
                                    engines.charge(engine as usize, latency);
                                }
                            }
                        }
                    }
                    Some(Received::Finish(v)) => {
                        return Some(engines.result(
                            v.walker_busy,
                            v.edges_processed,
                            v.iterations,
                        ));
                    }
                    None => return None,
                }
            }
        });
        // Translate lane: the IOMMU and every translation counter.
        let translate = scope.spawn(move || -> Result<(), Fault> {
            let mut scratch = Dram::recording(dram_config);
            let mut sys = MemSystem::new(iommu, pt, bitmap, &mut snapshot, &mut scratch);
            let mut etx = etx;
            loop {
                match rx.recv() {
                    Some(Received::Chunk(chunk)) => {
                        for rec in chunk.iter() {
                            match sys.access_via::<D>(rec.va, rec.kind) {
                                Ok(latency) => {
                                    // Exactly one pipelined transaction ends
                                    // every successful access (the data access
                                    // in `MemSystem::finish`); it carries the
                                    // access's engine and total latency.
                                    for ev in sys.dram.drain_events() {
                                        etx.push(match ev.class {
                                            DramClass::Fetch => MemEvent::Fetch {
                                                pa: ev.pa,
                                                kind: ev.kind,
                                            },
                                            DramClass::Pipelined => MemEvent::Data {
                                                pa: ev.pa,
                                                kind: ev.kind,
                                                engine: rec.engine,
                                                latency,
                                            },
                                        });
                                    }
                                }
                                Err(fault) => {
                                    // The failed access's walker fetches still
                                    // count against DRAM; forward them, then
                                    // hang up without a verdict.
                                    for ev in sys.dram.drain_events() {
                                        debug_assert_eq!(
                                            ev.class,
                                            DramClass::Fetch,
                                            "no data access on a faulted access"
                                        );
                                        etx.push(MemEvent::Fetch {
                                            pa: ev.pa,
                                            kind: ev.kind,
                                        });
                                    }
                                    etx.flush();
                                    return Err(fault);
                                }
                            }
                        }
                    }
                    Some(Received::Finish(FuncVerdict {
                        edges_processed,
                        iterations,
                    })) => {
                        etx.finish(TimingVerdict {
                            edges_processed,
                            iterations,
                            walker_busy: sys.iommu.stats.walker_busy.get(),
                        });
                        return Ok(());
                    }
                    None => panic!("functional lane ended without a verdict"),
                }
            }
        });
        run_functional(workload, g, pt, mem, cfg, tx);
        let translated = translate.join().expect("translate lane panicked");
        let timed = memory.join().expect("memory lane panicked");
        match translated {
            Err(fault) => Err(fault),
            Ok(()) => Ok(timed.expect("memory lane ended without a verdict")),
        }
    })
}

fn exec<P: Port>(
    workload: &Workload,
    port: &mut P,
    g: &GraphInMemory,
) -> Result<(u64, u32), Fault> {
    assert_eq!(
        g.prop_stride,
        workload.prop_stride(),
        "graph laid out for a different workload"
    );
    match *workload {
        Workload::Bfs { root } => bfs(port, g, root),
        Workload::PageRank { iterations } => pagerank(port, g, iterations),
        Workload::Sssp {
            root,
            max_iterations,
        } => sssp(port, g, root, max_iterations),
        Workload::Cf {
            iterations,
            features,
        } => cf(port, g, iterations, features),
    }
}

fn bfs<P: Port>(port: &mut P, g: &GraphInMemory, root: u32) -> Result<(u64, u32), Fault> {
    assert!(root < g.num_vertices, "root out of range");
    memset_u32(port.func_mut(), g.prop_va, g.num_vertices as u64, BFS_INF);
    poke_u32(port.func_mut(), g.prop_entry(root), 0);
    poke_u32(port.func_mut(), g.frontier_a_va, root);

    let (mut cur, mut nxt) = (g.frontier_a_va, g.frontier_b_va);
    let mut frontier_len = 1u64;
    let mut level = 0u32;
    let mut edges_processed = 0u64;

    while frontier_len > 0 {
        let mut next_len = 0u64;
        for i in 0..frontier_len {
            let v = port.read_u32(cur + i * 4)?;
            let e_src = port.shard(v);
            port.charge(e_src);
            let lo = port.read_u64(g.offset_entry(v))?;
            port.charge(e_src);
            let hi = port.read_u64(g.offset_entry(v + 1))?;
            port.charge(e_src);
            for j in lo..hi {
                let (_src, dst, _w) = read_edge(port, g, j)?;
                let e_stream = port.next_stream();
                port.charge(e_stream);
                edges_processed += 1;
                let e_dst = port.shard(dst);
                let dist = port.read_u32(g.prop_entry(dst))?;
                port.charge(e_dst);
                if dist == BFS_INF {
                    port.write_u32(g.prop_entry(dst), level + 1)?;
                    port.charge(e_dst);
                    port.write_u32(nxt + next_len * 4, dst)?;
                    port.charge(e_dst);
                    next_len += 1;
                }
            }
        }
        core::mem::swap(&mut cur, &mut nxt);
        frontier_len = next_len;
        level += 1;
    }
    Ok((edges_processed, level))
}

fn pagerank<P: Port>(
    port: &mut P,
    g: &GraphInMemory,
    iterations: u32,
) -> Result<(u64, u32), Fault> {
    let v_count = g.num_vertices;
    let init = 1.0f32 / v_count as f32;
    for v in 0..v_count {
        poke_f32(port.func_mut(), g.prop_entry(v), init);
        poke_f32(port.func_mut(), g.temp_entry(v), 0.0);
    }
    let mut edges_processed = 0u64;

    for _ in 0..iterations {
        // Scatter: stream every vertex's rank into its out-neighbours.
        for v in 0..v_count {
            let e_src = port.shard(v);
            let lo = port.read_u64(g.offset_entry(v))?;
            port.charge(e_src);
            let hi = port.read_u64(g.offset_entry(v + 1))?;
            port.charge(e_src);
            if hi == lo {
                continue;
            }
            let rank_bits = port.read_u32(g.prop_entry(v))?;
            port.charge(e_src);
            let contrib = f32::from_bits(rank_bits) / (hi - lo) as f32;
            for j in lo..hi {
                let (_src, dst, _w) = read_edge(port, g, j)?;
                let e_stream = port.next_stream();
                port.charge(e_stream);
                edges_processed += 1;
                let e_dst = port.shard(dst);
                let acc_bits = port.read_u32(g.temp_entry(dst))?;
                port.charge(e_dst);
                port.write_u32(
                    g.temp_entry(dst),
                    (f32::from_bits(acc_bits) + contrib).to_bits(),
                )?;
                port.charge(e_dst);
            }
        }
        // Apply: fold accumulators into ranks.
        for v in 0..v_count {
            let e = port.shard(v);
            let acc_bits = port.read_u32(g.temp_entry(v))?;
            port.charge(e);
            let rank = (1.0 - DAMPING) / v_count as f32 + DAMPING * f32::from_bits(acc_bits);
            port.write_u32(g.prop_entry(v), rank.to_bits())?;
            port.charge(e);
            // Accumulator reset rides the same store functionally.
            poke_f32(port.func_mut(), g.temp_entry(v), 0.0);
        }
    }
    Ok((edges_processed, iterations))
}

fn sssp<P: Port>(
    port: &mut P,
    g: &GraphInMemory,
    root: u32,
    max_iterations: u32,
) -> Result<(u64, u32), Fault> {
    assert!(root < g.num_vertices, "root out of range");
    memset_u32(
        port.func_mut(),
        g.prop_va,
        g.num_vertices as u64,
        f32::INFINITY.to_bits(),
    );
    poke_f32(port.func_mut(), g.prop_entry(root), 0.0);
    poke_u32(port.func_mut(), g.frontier_a_va, root);

    let (mut cur, mut nxt) = (g.frontier_a_va, g.frontier_b_va);
    let mut frontier_len = 1u64;
    let mut iterations = 0u32;
    let mut edges_processed = 0u64;
    // Frontier-membership bits: small on-chip structure, untimed.
    let mut in_next = vec![false; g.num_vertices as usize];

    while frontier_len > 0 && iterations < max_iterations {
        let mut next_len = 0u64;
        for i in 0..frontier_len {
            let v = port.read_u32(cur + i * 4)?;
            let e_src = port.shard(v);
            port.charge(e_src);
            let dist_bits = port.read_u32(g.prop_entry(v))?;
            port.charge(e_src);
            let dist_v = f32::from_bits(dist_bits);
            let lo = port.read_u64(g.offset_entry(v))?;
            port.charge(e_src);
            let hi = port.read_u64(g.offset_entry(v + 1))?;
            port.charge(e_src);
            for j in lo..hi {
                let (_src, dst, weight) = read_edge(port, g, j)?;
                let e_stream = port.next_stream();
                port.charge(e_stream);
                edges_processed += 1;
                let e_dst = port.shard(dst);
                let old_bits = port.read_u32(g.prop_entry(dst))?;
                port.charge(e_dst);
                let candidate = dist_v + weight;
                if candidate < f32::from_bits(old_bits) {
                    port.write_u32(g.prop_entry(dst), candidate.to_bits())?;
                    port.charge(e_dst);
                    if !in_next[dst as usize] {
                        in_next[dst as usize] = true;
                        port.write_u32(nxt + next_len * 4, dst)?;
                        port.charge(e_dst);
                        next_len += 1;
                    }
                }
            }
        }
        // Clear membership bits for the vertices we queued.
        for i in 0..next_len {
            let dst = peek_u32(port.func(), nxt + i * 4);
            in_next[dst as usize] = false;
        }
        core::mem::swap(&mut cur, &mut nxt);
        frontier_len = next_len;
        iterations += 1;
    }
    Ok((edges_processed, iterations))
}

fn cf<P: Port>(
    port: &mut P,
    g: &GraphInMemory,
    iterations: u32,
    features: u32,
) -> Result<(u64, u32), Fault> {
    assert!(features > 0, "CF needs at least one feature");
    // Deterministic small initial factors (one translation and one byte
    // write per vertex).
    let mut row = Vec::with_capacity(features as usize * 4);
    for v in 0..g.num_vertices {
        row.clear();
        for f in 0..features {
            let seed = ((v as u64 * 31 + f as u64 * 7) % 97) as f32;
            row.extend_from_slice(&(0.05 + seed / 1000.0).to_le_bytes());
        }
        let func = port.func_mut();
        let (pa, _) = func.xlate(g.prop_entry(v)).expect("prop array mapped");
        func.ram_mut().write_bytes(pa, &row);
    }
    let mut edges_processed = 0u64;
    let k = features as u64;
    let mut uvec: Vec<f32> = Vec::with_capacity(k as usize);
    let mut mvec: Vec<f32> = Vec::with_capacity(k as usize);
    let mut unew: Vec<f32> = Vec::with_capacity(k as usize);
    let mut mnew: Vec<f32> = Vec::with_capacity(k as usize);

    for _ in 0..iterations {
        for j in 0..g.num_edges {
            let (user, item, rating) = read_edge(port, g, j)?;
            let e_user = port.shard(user);
            let e_item = port.shard(item);
            let e_stream = port.next_stream();
            port.charge(e_stream);
            edges_processed += 1;
            // Vector reads: one timed transaction each (the vector is one
            // DRAM burst), remaining lanes functional with one translation.
            let user_va = g.prop_entry(user);
            let item_va = g.prop_entry(item);
            let u0 = port.read_f32(user_va)?;
            port.charge(e_user);
            let m0 = port.read_f32(item_va)?;
            port.charge(e_item);
            peek_vec(port.func(), user_va, k, &mut uvec);
            peek_vec(port.func(), item_va, k, &mut mvec);
            uvec[0] = u0;
            mvec[0] = m0;
            let err = rating - uvec.iter().zip(&mvec).map(|(a, b)| a * b).sum::<f32>();
            // SGD update of both factor vectors.
            unew.clear();
            mnew.clear();
            for f in 0..k as usize {
                unew.push(
                    uvec[f] + CF_LEARNING_RATE * (err * mvec[f] - CF_REGULARIZATION * uvec[f]),
                );
                mnew.push(
                    mvec[f] + CF_LEARNING_RATE * (err * uvec[f] - CF_REGULARIZATION * mvec[f]),
                );
            }
            port.write_f32(user_va, unew[0])?;
            port.charge(e_user);
            port.write_f32(item_va, mnew[0])?;
            port.charge(e_item);
            poke_vec_tail(port.func_mut(), user_va, &unew);
            poke_vec_tail(port.func_mut(), item_va, &mnew);
        }
    }
    Ok((edges_processed, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_mem::BuddyAllocator;

    #[test]
    fn auto_lanes_divides_cores_among_jobs() {
        // Solo process: lanes track the core count up to the cap.
        assert_eq!(auto_lanes(1, 1), 1);
        assert_eq!(auto_lanes(2, 1), 2);
        assert_eq!(auto_lanes(3, 1), 3);
        assert_eq!(auto_lanes(64, 1), MAX_LANES);
        // Sweep workers split the cores before lanes multiply them.
        assert_eq!(auto_lanes(8, 2), MAX_LANES);
        assert_eq!(auto_lanes(8, 4), 2);
        assert_eq!(auto_lanes(8, 8), 1);
        assert_eq!(auto_lanes(2, 2), 1);
        // Oversubscribed jobs floor at the serial path; jobs=0 is 1.
        assert_eq!(auto_lanes(4, 16), 1);
        assert_eq!(auto_lanes(4, 0), MAX_LANES);
    }

    #[test]
    fn explicit_lanes_ignore_jobs_and_clamp() {
        assert_eq!(effective_lanes_with_jobs(1, 64), 1);
        assert_eq!(effective_lanes_with_jobs(2, 64), 2);
        assert_eq!(effective_lanes_with_jobs(3, 64), 3);
        assert_eq!(effective_lanes_with_jobs(17, 64), MAX_LANES);
        assert_eq!(effective_lanes(MAX_LANES + 1), MAX_LANES);
    }

    /// A faulting access is forwarded stamped with the engine of the most
    /// recent charge (the engine mid-burst), not a hard-coded zero.
    #[test]
    fn fault_record_carries_last_charged_engine() {
        let mut mem = PhysMem::new(1 << 16);
        let mut alloc = BuddyAllocator::new(1 << 16);
        let mut pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        pt.map_identity_pe(
            &mut mem,
            &mut alloc,
            VirtAddr::new(16 << 20),
            64 * 1024,
            Permission::ReadOnly,
        )
        .unwrap();
        let (tx, rx) = transport::channel(LaneTuning {
            chunk_records: 4,
            depth: 2,
        });
        let mut port = TracePort {
            view: FuncView::new(&pt, &mut mem),
            tx,
            num_engines: 8,
            rr: 0,
            pending: None,
            last_engine: 0,
        };
        let va = VirtAddr::new(16 << 20);
        port.read_u32(va).unwrap();
        port.charge(5);
        // A store to the read-only page: forwarded, then refused.
        let fault = port.write_u32(va, 1).unwrap_err();
        assert_eq!(fault.kind, FaultKind::Protection);
        drop(port);
        let mut records: Vec<Record> = Vec::new();
        while let Some(msg) = rx.recv() {
            match msg {
                Received::Chunk(chunk) => records.extend_from_slice(&chunk),
                Received::Finish(_) => panic!("fault path must not deliver a verdict"),
            }
        }
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].engine, 5);
        assert_eq!(
            records[1].engine, 5,
            "fault record inherits the last engine"
        );
        assert_eq!(records[1].kind, AccessKind::Write);
        assert_eq!(records[1].va, va);
    }
}
