//! The Graphicionado-style execution model: 8 processing engines stream
//! the graph through the IOMMU, with per-engine cycle accounting.
//!
//! Timing model (see DESIGN.md §3): each pipeline stage costs one cycle
//! (Table 2: "computation performed in each stage of a processing engine
//! is executed in one cycle") and every memory operation adds its
//! end-to-end latency from the shared [`MemSystem`] — validation plus
//! data fetch, overlapped for DVM-PE+ reads. Edges are sharded across
//! engines by destination vertex (Graphicionado's destination
//! partitioning); source-side stages run on the source shard. The
//! workload's execution time is the maximum engine clock.
//!
//! Host-side preparation (array initialization) and the accelerator's
//! small on-chip state (frontier membership bits, scalar counters) are
//! functional-only and untimed; all graph-data traffic is timed.

use crate::layout::GraphInMemory;
use dvm_mmu::MemSystem;
use dvm_sim::{Cycles, Histogram};
use dvm_types::{Fault, VirtAddr, PAGE_SIZE};

/// Accelerator hardware parameters (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelConfig {
    /// Processing engines running in parallel.
    pub engines: u32,
    /// Cycles per pipeline stage.
    pub stage_cycles: Cycles,
    /// Concurrent walks the shared IOMMU walker / DAV engine sustains.
    /// Translation work beyond this concurrency queues, so a scheme whose
    /// aggregate walk time exceeds the engines' own time becomes
    /// walker-bound — the effect that makes high-miss-rate conventional
    /// translation so expensive for an 8-engine accelerator.
    pub walker_ports: u32,
}

impl Default for AccelConfig {
    fn default() -> Self {
        Self {
            engines: 8,
            stage_cycles: 1,
            walker_ports: 4,
        }
    }
}

/// Result of one accelerator run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Execution time: the maximum engine clock, or the shared walker's
    /// occupancy when translation is the bottleneck.
    pub cycles: Cycles,
    /// Per-engine clocks.
    pub engine_cycles: Vec<Cycles>,
    /// Edges processed (including re-relaxations).
    pub edges_processed: u64,
    /// Iterations (BFS/SSSP levels, PR/CF sweeps) executed.
    pub iterations: u32,
    /// Aggregate cycles the shared walker was busy, divided by its ports.
    pub walker_cycles: Cycles,
    /// Distribution of per-access end-to-end latencies.
    pub latency_hist: Histogram,
}

/// One of the paper's four graph workloads (§6.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Breadth-first search from a root vertex.
    Bfs {
        /// Search root.
        root: u32,
    },
    /// PageRank, a fixed number of sweeps.
    PageRank {
        /// Sweeps over all edges.
        iterations: u32,
    },
    /// Single-source shortest path (frontier Bellman-Ford).
    Sssp {
        /// Source vertex.
        root: u32,
        /// Convergence bound.
        max_iterations: u32,
    },
    /// Collaborative filtering by SGD matrix factorization over a
    /// bipartite rating graph.
    Cf {
        /// SGD sweeps.
        iterations: u32,
        /// Feature-vector length per vertex.
        features: u32,
    },
}

impl Workload {
    /// Display name used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Bfs { .. } => "BFS",
            Workload::PageRank { .. } => "PageRank",
            Workload::Sssp { .. } => "SSSP",
            Workload::Cf { .. } => "CF",
        }
    }

    /// Bytes per vertex property for this workload.
    pub fn prop_stride(&self) -> u64 {
        match self {
            Workload::Cf { features, .. } => 4 * *features as u64,
            _ => 4,
        }
    }

    /// Paper defaults: BFS/SSSP from vertex 0, 2 PageRank sweeps, one
    /// 32-feature CF sweep (matrix-factorization kernels typically use
    /// ~30 latent features; the vector size also sets CF's TLB footprint).
    pub fn default_set() -> [Workload; 4] {
        [
            Workload::Bfs { root: 0 },
            Workload::PageRank { iterations: 2 },
            Workload::Sssp {
                root: 0,
                max_iterations: 64,
            },
            Workload::Cf {
                iterations: 1,
                features: 32,
            },
        ]
    }
}

impl core::fmt::Display for Workload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// PageRank damping factor.
pub const DAMPING: f32 = 0.85;
/// CF SGD learning rate.
pub const CF_LEARNING_RATE: f32 = 0.002;
/// CF SGD regularization.
pub const CF_REGULARIZATION: f32 = 0.05;
/// Unreached BFS level.
pub const BFS_INF: u32 = u32::MAX;

struct Engines {
    clocks: Vec<Cycles>,
    stage: Cycles,
    rr: usize,
    walker_ports: u32,
    walker_busy_at_start: Cycles,
    latency_hist: Histogram,
}

impl Engines {
    fn new(cfg: &AccelConfig, sys: &MemSystem<'_>) -> Self {
        assert!(cfg.engines > 0, "need at least one engine");
        assert!(cfg.walker_ports > 0, "need at least one walker port");
        Self {
            clocks: vec![0; cfg.engines as usize],
            stage: cfg.stage_cycles,
            rr: 0,
            walker_ports: cfg.walker_ports,
            walker_busy_at_start: sys.iommu.stats.walker_busy.get(),
            latency_hist: Histogram::new("access_latency"),
        }
    }

    /// Destination sharding: hash the vertex id so RMAT's low-id hubs do
    /// not all land on engine 0 (Graphicionado interleaves destinations).
    #[inline]
    fn shard(&self, v: u32) -> usize {
        (v.wrapping_mul(0x9E37_79B1) >> 16) as usize % self.clocks.len()
    }

    /// Streaming stages are interleaved round-robin across engines.
    #[inline]
    fn next_stream(&mut self) -> usize {
        self.rr = (self.rr + 1) % self.clocks.len();
        self.rr
    }

    #[inline]
    fn charge(&mut self, engine: usize, mem_latency: Cycles) {
        self.latency_hist.sample(mem_latency);
        self.clocks[engine] += mem_latency + self.stage;
    }

    fn result(self, sys: &MemSystem<'_>, edges_processed: u64, iterations: u32) -> RunResult {
        let walker_cycles = (sys.iommu.stats.walker_busy.get() - self.walker_busy_at_start)
            / self.walker_ports as u64;
        let engine_max = self.clocks.iter().copied().max().unwrap_or(0);
        RunResult {
            cycles: engine_max.max(walker_cycles),
            engine_cycles: self.clocks,
            edges_processed,
            iterations,
            walker_cycles,
            latency_hist: self.latency_hist,
        }
    }
}

// ---------------------------------------------------------------------
// Untimed host/on-chip helpers (functional only).
// ---------------------------------------------------------------------

fn peek_u32(sys: &MemSystem, va: VirtAddr) -> u32 {
    let (pa, _) = sys
        .untimed_translate(va)
        .unwrap_or_else(|| panic!("untimed read of unmapped {va}"));
    sys.mem.read_u32(pa)
}

fn peek_f32(sys: &MemSystem, va: VirtAddr) -> f32 {
    f32::from_bits(peek_u32(sys, va))
}

fn poke_u32(sys: &mut MemSystem, va: VirtAddr, value: u32) {
    let (pa, _) = sys
        .untimed_translate(va)
        .unwrap_or_else(|| panic!("untimed write of unmapped {va}"));
    sys.mem.write_u32(pa, value);
}

fn poke_f32(sys: &mut MemSystem, va: VirtAddr, value: f32) {
    poke_u32(sys, va, value.to_bits());
}

/// Largest factor vector (in bytes) the batched helpers handle on the
/// stack; larger vectors fall back to per-lane accesses.
const VEC_BUF_BYTES: usize = 512;

/// Untimed read of `k` contiguous f32 lanes with a single translation
/// (the vector is page-contained: strides divide the page size).
fn peek_vec(sys: &MemSystem, va: VirtAddr, k: u64, out: &mut Vec<f32>) {
    let (pa, _) = sys
        .untimed_translate(va)
        .unwrap_or_else(|| panic!("untimed read of unmapped {va}"));
    out.clear();
    let len = k as usize * 4;
    if len <= VEC_BUF_BYTES {
        let mut buf = [0u8; VEC_BUF_BYTES];
        sys.mem.read_bytes(pa, &mut buf[..len]);
        out.extend(
            buf[..len]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap())),
        );
    } else {
        for f in 0..k {
            out.push(sys.mem.read_f32(pa + f * 4));
        }
    }
}

/// Untimed write of lanes `1..k` (lane 0 is written by the timed store).
fn poke_vec_tail(sys: &mut MemSystem, va: VirtAddr, values: &[f32]) {
    let (pa, _) = sys
        .untimed_translate(va)
        .unwrap_or_else(|| panic!("untimed write of unmapped {va}"));
    let tail = &values[1..];
    let len = tail.len() * 4;
    if len <= VEC_BUF_BYTES {
        let mut buf = [0u8; VEC_BUF_BYTES];
        for (chunk, v) in buf.chunks_exact_mut(4).zip(tail) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        sys.mem.write_bytes(pa + 4, &buf[..len]);
    } else {
        for (f, v) in values.iter().enumerate().skip(1) {
            sys.mem.write_f32(pa + f as u64 * 4, *v);
        }
    }
}

/// Host-side memset of a `u32` array (page-chunked, untimed).
fn memset_u32(sys: &mut MemSystem, base: VirtAddr, count: u64, value: u32) {
    // One full page of the fill pattern, sliced per chunk. `base` is
    // 4-aligned and pages are 4-aligned, so chunks are whole words.
    let mut buf = Vec::with_capacity(PAGE_SIZE as usize);
    for _ in 0..PAGE_SIZE / 4 {
        buf.extend_from_slice(&value.to_le_bytes());
    }
    let total = count * 4;
    let mut done = 0u64;
    while done < total {
        let va = base + done;
        let in_page = PAGE_SIZE - (va.raw() % PAGE_SIZE);
        let n = in_page.min(total - done);
        let (pa, _) = sys.untimed_translate(va).expect("mapped");
        sys.mem.write_bytes(pa, &buf[..n as usize]);
        done += n;
    }
}

/// Untimed dump of the property array as `u32`s (for verification).
pub fn dump_props_u32(sys: &MemSystem, g: &GraphInMemory) -> Vec<u32> {
    (0..g.num_vertices)
        .map(|v| peek_u32(sys, g.prop_entry(v)))
        .collect()
}

/// Untimed dump of the property array as `f32`s (for verification).
pub fn dump_props_f32(sys: &MemSystem, g: &GraphInMemory) -> Vec<f32> {
    (0..g.num_vertices)
        .map(|v| peek_f32(sys, g.prop_entry(v)))
        .collect()
}

// ---------------------------------------------------------------------
// Timed primitives.
// ---------------------------------------------------------------------

/// Timed read of an edge record; returns `(src, dst, weight)`. One timed
/// transaction covers the 12-byte record (it fits a 64-byte line); the
/// weight lane is completed functionally.
fn read_edge(
    sys: &mut MemSystem,
    g: &GraphInMemory,
    i: u64,
) -> Result<(u32, u32, f32, Cycles), Fault> {
    let va = g.edge_entry(i);
    let (srcdst, lat) = sys.read_u64(va)?;
    let src = srcdst as u32;
    let dst = (srcdst >> 32) as u32;
    let weight = peek_f32(sys, va + 8);
    Ok((src, dst, weight, lat))
}

// ---------------------------------------------------------------------
// The runner.
// ---------------------------------------------------------------------

/// Execute `workload` over the in-memory graph `g` through the memory
/// system `sys`.
///
/// # Errors
///
/// Propagates the first [`Fault`] the IOMMU raises (the paper's design
/// raises it on the host CPU and aborts the offload).
///
/// # Panics
///
/// Panics if `g.prop_stride` does not match the workload's stride.
pub fn run(
    workload: &Workload,
    g: &GraphInMemory,
    sys: &mut MemSystem<'_>,
    cfg: &AccelConfig,
) -> Result<RunResult, Fault> {
    assert_eq!(
        g.prop_stride,
        workload.prop_stride(),
        "graph laid out for a different workload"
    );
    match *workload {
        Workload::Bfs { root } => run_bfs(g, sys, cfg, root),
        Workload::PageRank { iterations } => run_pagerank(g, sys, cfg, iterations),
        Workload::Sssp {
            root,
            max_iterations,
        } => run_sssp(g, sys, cfg, root, max_iterations),
        Workload::Cf {
            iterations,
            features,
        } => run_cf(g, sys, cfg, iterations, features),
    }
}

fn run_bfs(
    g: &GraphInMemory,
    sys: &mut MemSystem<'_>,
    cfg: &AccelConfig,
    root: u32,
) -> Result<RunResult, Fault> {
    assert!(root < g.num_vertices, "root out of range");
    let mut engines = Engines::new(cfg, sys);
    memset_u32(sys, g.prop_va, g.num_vertices as u64, BFS_INF);
    poke_u32(sys, g.prop_entry(root), 0);
    poke_u32(sys, g.frontier_a_va, root);

    let (mut cur, mut nxt) = (g.frontier_a_va, g.frontier_b_va);
    let mut frontier_len = 1u64;
    let mut level = 0u32;
    let mut edges_processed = 0u64;

    while frontier_len > 0 {
        let mut next_len = 0u64;
        for i in 0..frontier_len {
            let (v, lat) = sys.read_u32(cur + i * 4)?;
            let e_src = engines.shard(v);
            engines.charge(e_src, lat);
            let (lo, lat) = sys.read_u64(g.offset_entry(v))?;
            engines.charge(e_src, lat);
            let (hi, lat) = sys.read_u64(g.offset_entry(v + 1))?;
            engines.charge(e_src, lat);
            for j in lo..hi {
                let (_src, dst, _w, lat) = read_edge(sys, g, j)?;
                let e_stream = engines.next_stream();
                engines.charge(e_stream, lat);
                edges_processed += 1;
                let e_dst = engines.shard(dst);
                let (dist, lat) = sys.read_u32(g.prop_entry(dst))?;
                engines.charge(e_dst, lat);
                if dist == BFS_INF {
                    let lat = sys.write_u32(g.prop_entry(dst), level + 1)?;
                    engines.charge(e_dst, lat);
                    let lat = sys.write_u32(nxt + next_len * 4, dst)?;
                    engines.charge(e_dst, lat);
                    next_len += 1;
                }
            }
        }
        core::mem::swap(&mut cur, &mut nxt);
        frontier_len = next_len;
        level += 1;
    }
    Ok(engines.result(sys, edges_processed, level))
}

fn run_pagerank(
    g: &GraphInMemory,
    sys: &mut MemSystem<'_>,
    cfg: &AccelConfig,
    iterations: u32,
) -> Result<RunResult, Fault> {
    let mut engines = Engines::new(cfg, sys);
    let v_count = g.num_vertices;
    let init = 1.0f32 / v_count as f32;
    for v in 0..v_count {
        poke_f32(sys, g.prop_entry(v), init);
        poke_f32(sys, g.temp_entry(v), 0.0);
    }
    let mut edges_processed = 0u64;

    for _ in 0..iterations {
        // Scatter: stream every vertex's rank into its out-neighbours.
        for v in 0..v_count {
            let e_src = engines.shard(v);
            let (lo, lat) = sys.read_u64(g.offset_entry(v))?;
            engines.charge(e_src, lat);
            let (hi, lat) = sys.read_u64(g.offset_entry(v + 1))?;
            engines.charge(e_src, lat);
            if hi == lo {
                continue;
            }
            let (rank_bits, lat) = sys.read_u32(g.prop_entry(v))?;
            engines.charge(e_src, lat);
            let contrib = f32::from_bits(rank_bits) / (hi - lo) as f32;
            for j in lo..hi {
                let (_src, dst, _w, lat) = read_edge(sys, g, j)?;
                let e_stream = engines.next_stream();
                engines.charge(e_stream, lat);
                edges_processed += 1;
                let e_dst = engines.shard(dst);
                let (acc_bits, lat) = sys.read_u32(g.temp_entry(dst))?;
                engines.charge(e_dst, lat);
                let lat = sys.write_u32(
                    g.temp_entry(dst),
                    (f32::from_bits(acc_bits) + contrib).to_bits(),
                )?;
                engines.charge(e_dst, lat);
            }
        }
        // Apply: fold accumulators into ranks.
        for v in 0..v_count {
            let e = engines.shard(v);
            let (acc_bits, lat) = sys.read_u32(g.temp_entry(v))?;
            engines.charge(e, lat);
            let rank = (1.0 - DAMPING) / v_count as f32 + DAMPING * f32::from_bits(acc_bits);
            let lat = sys.write_u32(g.prop_entry(v), rank.to_bits())?;
            engines.charge(e, lat);
            // Accumulator reset rides the same store functionally.
            poke_f32(sys, g.temp_entry(v), 0.0);
        }
    }
    Ok(engines.result(sys, edges_processed, iterations))
}

fn run_sssp(
    g: &GraphInMemory,
    sys: &mut MemSystem<'_>,
    cfg: &AccelConfig,
    root: u32,
    max_iterations: u32,
) -> Result<RunResult, Fault> {
    assert!(root < g.num_vertices, "root out of range");
    let mut engines = Engines::new(cfg, sys);
    memset_u32(
        sys,
        g.prop_va,
        g.num_vertices as u64,
        f32::INFINITY.to_bits(),
    );
    poke_f32(sys, g.prop_entry(root), 0.0);
    poke_u32(sys, g.frontier_a_va, root);

    let (mut cur, mut nxt) = (g.frontier_a_va, g.frontier_b_va);
    let mut frontier_len = 1u64;
    let mut iterations = 0u32;
    let mut edges_processed = 0u64;
    // Frontier-membership bits: small on-chip structure, untimed.
    let mut in_next = vec![false; g.num_vertices as usize];

    while frontier_len > 0 && iterations < max_iterations {
        let mut next_len = 0u64;
        for i in 0..frontier_len {
            let (v, lat) = sys.read_u32(cur + i * 4)?;
            let e_src = engines.shard(v);
            engines.charge(e_src, lat);
            let (dist_bits, lat) = sys.read_u32(g.prop_entry(v))?;
            engines.charge(e_src, lat);
            let dist_v = f32::from_bits(dist_bits);
            let (lo, lat) = sys.read_u64(g.offset_entry(v))?;
            engines.charge(e_src, lat);
            let (hi, lat) = sys.read_u64(g.offset_entry(v + 1))?;
            engines.charge(e_src, lat);
            for j in lo..hi {
                let (_src, dst, weight, lat) = read_edge(sys, g, j)?;
                let e_stream = engines.next_stream();
                engines.charge(e_stream, lat);
                edges_processed += 1;
                let e_dst = engines.shard(dst);
                let (old_bits, lat) = sys.read_u32(g.prop_entry(dst))?;
                engines.charge(e_dst, lat);
                let candidate = dist_v + weight;
                if candidate < f32::from_bits(old_bits) {
                    let lat = sys.write_u32(g.prop_entry(dst), candidate.to_bits())?;
                    engines.charge(e_dst, lat);
                    if !in_next[dst as usize] {
                        in_next[dst as usize] = true;
                        let lat = sys.write_u32(nxt + next_len * 4, dst)?;
                        engines.charge(e_dst, lat);
                        next_len += 1;
                    }
                }
            }
        }
        // Clear membership bits for the vertices we queued.
        for i in 0..next_len {
            let dst = peek_u32(sys, nxt + i * 4);
            in_next[dst as usize] = false;
        }
        core::mem::swap(&mut cur, &mut nxt);
        frontier_len = next_len;
        iterations += 1;
    }
    Ok(engines.result(sys, edges_processed, iterations))
}

fn run_cf(
    g: &GraphInMemory,
    sys: &mut MemSystem<'_>,
    cfg: &AccelConfig,
    iterations: u32,
    features: u32,
) -> Result<RunResult, Fault> {
    assert!(features > 0, "CF needs at least one feature");
    let mut engines = Engines::new(cfg, sys);
    // Deterministic small initial factors (one translation and one byte
    // write per vertex).
    let mut row = Vec::with_capacity(features as usize * 4);
    for v in 0..g.num_vertices {
        let (pa, _) = sys
            .untimed_translate(g.prop_entry(v))
            .expect("prop array mapped");
        row.clear();
        for f in 0..features {
            let seed = ((v as u64 * 31 + f as u64 * 7) % 97) as f32;
            row.extend_from_slice(&(0.05 + seed / 1000.0).to_le_bytes());
        }
        sys.mem.write_bytes(pa, &row);
    }
    let mut edges_processed = 0u64;
    let k = features as u64;
    let mut uvec: Vec<f32> = Vec::with_capacity(k as usize);
    let mut mvec: Vec<f32> = Vec::with_capacity(k as usize);
    let mut unew: Vec<f32> = Vec::with_capacity(k as usize);
    let mut mnew: Vec<f32> = Vec::with_capacity(k as usize);

    for _ in 0..iterations {
        for j in 0..g.num_edges {
            let (user, item, rating, lat) = read_edge(sys, g, j)?;
            let e_user = engines.shard(user);
            let e_item = engines.shard(item);
            let e_stream = engines.next_stream();
            engines.charge(e_stream, lat);
            edges_processed += 1;
            // Vector reads: one timed transaction each (the vector is one
            // DRAM burst), remaining lanes functional with one translation.
            let user_va = g.prop_entry(user);
            let item_va = g.prop_entry(item);
            let (u0, lat) = sys.read_f32(user_va)?;
            engines.charge(e_user, lat);
            let (m0, lat) = sys.read_f32(item_va)?;
            engines.charge(e_item, lat);
            peek_vec(sys, user_va, k, &mut uvec);
            peek_vec(sys, item_va, k, &mut mvec);
            uvec[0] = u0;
            mvec[0] = m0;
            let err = rating - uvec.iter().zip(&mvec).map(|(a, b)| a * b).sum::<f32>();
            // SGD update of both factor vectors.
            unew.clear();
            mnew.clear();
            for f in 0..k as usize {
                unew.push(
                    uvec[f] + CF_LEARNING_RATE * (err * mvec[f] - CF_REGULARIZATION * uvec[f]),
                );
                mnew.push(
                    mvec[f] + CF_LEARNING_RATE * (err * uvec[f] - CF_REGULARIZATION * mvec[f]),
                );
            }
            let lat = sys.write_f32(user_va, unew[0])?;
            engines.charge(e_user, lat);
            let lat = sys.write_f32(item_va, mnew[0])?;
            engines.charge(e_item, lat);
            poke_vec_tail(sys, user_va, &unew);
            poke_vec_tail(sys, item_va, &mnew);
        }
    }
    Ok(engines.result(sys, edges_processed, iterations))
}
