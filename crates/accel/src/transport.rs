//! Zero-allocation chunk transport between pipeline lanes.
//!
//! The lane pipeline (see `run.rs` and DESIGN.md "Lane partitioning")
//! ships its record streams between threads in chunks. A naive transport
//! allocates a fresh `Vec` per chunk — millions of allocations on a long
//! unit. This module recycles them instead: the consumer returns every
//! spent chunk (cleared, capacity intact) to the producer over an
//! unbounded *free-list* channel, so after warm-up the producer never
//! allocates again. Steady-state chunk allocations are bounded by the
//! channel depth plus the buffers in each lane's hands, regardless of how
//! many chunks flow.
//!
//! The data channel is a bounded [`mpsc::sync_channel`], so a producer
//! that runs ahead of its consumer blocks once `depth` chunks are in
//! flight — backpressure, not unbounded buffering.
//!
//! ```
//! use dvm_accel::transport::{channel, LaneTuning, Received};
//! let (mut tx, rx) = channel::<u32, &'static str>(LaneTuning::default());
//! std::thread::spawn(move || {
//!     for i in 0..10_000 {
//!         tx.push(i);
//!     }
//!     tx.finish("done");
//! });
//! let mut sum = 0u64;
//! loop {
//!     match rx.recv() {
//!         Some(Received::Chunk(chunk)) => sum += chunk.iter().map(|&v| v as u64).sum::<u64>(),
//!         Some(Received::Finish(v)) => break assert_eq!(v, "done"),
//!         None => unreachable!("producer finished"),
//!     }
//! }
//! assert_eq!(sum, (0..10_000u64).sum());
//! ```

use std::ops::Deref;
use std::sync::mpsc;

/// Chunking parameters for one lane-to-lane transport. The defaults are
/// the production values; tests shrink them to force chunk-boundary and
/// backpressure edges (see `run_pipelined_tuned` in `run.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneTuning {
    /// Records per chunk sent downstream.
    pub chunk_records: usize,
    /// Chunks in flight before the producer blocks.
    pub depth: usize,
}

impl Default for LaneTuning {
    fn default() -> Self {
        Self {
            chunk_records: 4096,
            depth: 8,
        }
    }
}

impl LaneTuning {
    /// Upper bound on fresh chunk allocations the producer performs over
    /// the transport's whole life: one buffer being filled by the
    /// producer, one mid-send, up to `depth` in flight, and one in the
    /// consumer's hands — constant in the number of chunks shipped.
    pub fn alloc_bound(&self) -> u64 {
        self.depth as u64 + 3
    }
}

/// A message from producer to consumer: a chunk of records, or the
/// producer's final verdict. A producer that drops its sender without
/// calling [`ChunkSender::finish`] signals abnormal termination — the
/// consumer's [`ChunkReceiver::recv`] returns `None` with no verdict.
enum LaneMsg<T, V> {
    Chunk(Vec<T>),
    Finish(V),
}

/// What one [`ChunkReceiver::recv`] call yielded.
pub enum Received<'a, T, V> {
    /// A chunk of records, in stream order. The guard returns the chunk
    /// to the producer's free list when dropped.
    Chunk(ChunkGuard<'a, T>),
    /// The producer's verdict; the stream is complete.
    Finish(V),
}

/// Borrowed view of one received chunk. On drop the underlying buffer is
/// cleared and sent back to the producer for reuse.
pub struct ChunkGuard<'a, T> {
    buf: Option<Vec<T>>,
    recycle: &'a mpsc::Sender<Vec<T>>,
}

impl<T> Deref for ChunkGuard<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.buf.as_ref().expect("buffer present until drop")
    }
}

impl<T> Drop for ChunkGuard<'_, T> {
    fn drop(&mut self) {
        let mut buf = self.buf.take().expect("dropped once");
        buf.clear();
        // A vanished producer no longer needs its buffers back.
        let _ = self.recycle.send(buf);
    }
}

/// Producer half: buffers records and ships full chunks downstream,
/// drawing spent buffers from the free list before allocating.
pub struct ChunkSender<T, V> {
    tx: mpsc::SyncSender<LaneMsg<T, V>>,
    pool: mpsc::Receiver<Vec<T>>,
    buf: Vec<T>,
    chunk_records: usize,
    fresh_allocs: u64,
    /// The consumer hung up; stop shipping (its outcome is authoritative).
    dead: bool,
}

/// Consumer half: yields chunks in order, recycling each one.
pub struct ChunkReceiver<T, V> {
    rx: mpsc::Receiver<LaneMsg<T, V>>,
    recycle: mpsc::Sender<Vec<T>>,
}

/// Build a connected transport with the given tuning.
pub fn channel<T, V>(tuning: LaneTuning) -> (ChunkSender<T, V>, ChunkReceiver<T, V>) {
    assert!(tuning.chunk_records > 0, "chunks must hold records");
    assert!(tuning.depth > 0, "need at least one chunk in flight");
    let (tx, rx) = mpsc::sync_channel(tuning.depth);
    let (recycle, pool) = mpsc::channel();
    (
        ChunkSender {
            tx,
            pool,
            buf: Vec::with_capacity(tuning.chunk_records),
            chunk_records: tuning.chunk_records,
            fresh_allocs: 1,
            dead: false,
        },
        ChunkReceiver { rx, recycle },
    )
}

impl<T, V> ChunkSender<T, V> {
    /// Append one record, shipping the chunk downstream when full. The
    /// send blocks while `depth` chunks are already in flight.
    #[inline]
    pub fn push(&mut self, record: T) {
        self.buf.push(record);
        if self.buf.len() >= self.chunk_records {
            self.flush();
        }
    }

    /// Ship the partial chunk now (no-op when empty or the consumer is
    /// gone). Called automatically by [`push`](Self::push) and
    /// [`finish`](Self::finish); fault paths call it directly to get the
    /// final records out before dropping the sender.
    pub fn flush(&mut self) {
        if self.buf.is_empty() || self.dead {
            return;
        }
        let next = match self.pool.try_recv() {
            Ok(recycled) => recycled,
            Err(_) => {
                self.fresh_allocs += 1;
                Vec::with_capacity(self.chunk_records)
            }
        };
        let chunk = std::mem::replace(&mut self.buf, next);
        if self.tx.send(LaneMsg::Chunk(chunk)).is_err() {
            self.dead = true;
        }
    }

    /// `true` once the consumer has hung up; further records are
    /// discarded (the consumer's outcome is authoritative).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Flush the tail and deliver the final verdict. Returns the number
    /// of fresh chunk allocations performed over the transport's life —
    /// the recycling invariant tests assert it against
    /// [`LaneTuning::alloc_bound`].
    pub fn finish(mut self, verdict: V) -> u64 {
        self.flush();
        if !self.dead {
            let _ = self.tx.send(LaneMsg::Finish(verdict));
        }
        self.fresh_allocs
    }
}

impl<T, V> ChunkReceiver<T, V> {
    /// Block for the next chunk or the verdict. `None` means the producer
    /// dropped its sender without finishing (it hit a fault and the
    /// consumer's replay of the already-received records is the
    /// authoritative outcome).
    pub fn recv(&self) -> Option<Received<'_, T, V>> {
        match self.rx.recv().ok()? {
            LaneMsg::Chunk(buf) => Some(Received::Chunk(ChunkGuard {
                buf: Some(buf),
                recycle: &self.recycle,
            })),
            LaneMsg::Finish(v) => Some(Received::Finish(v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every record arrives, in order, followed by the verdict.
    #[test]
    fn stream_order_and_verdict() {
        let tuning = LaneTuning {
            chunk_records: 3,
            depth: 2,
        };
        let (mut tx, rx) = channel::<u32, u64>(tuning);
        let consumer = std::thread::spawn(move || {
            let mut seen = Vec::new();
            loop {
                match rx.recv() {
                    Some(Received::Chunk(chunk)) => seen.extend_from_slice(&chunk),
                    Some(Received::Finish(v)) => return (seen, Some(v)),
                    None => return (seen, None),
                }
            }
        });
        for i in 0..100u32 {
            tx.push(i);
        }
        tx.finish(12345);
        let (seen, verdict) = consumer.join().unwrap();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        assert_eq!(verdict, Some(12345));
    }

    /// Steady-state recycling: allocations stay bounded by the tuning's
    /// alloc bound no matter how many chunks flow.
    #[test]
    fn allocations_bounded_by_depth() {
        let tuning = LaneTuning {
            chunk_records: 4,
            depth: 2,
        };
        let (mut tx, rx) = channel::<u64, ()>(tuning);
        let consumer = std::thread::spawn(move || {
            let mut total = 0u64;
            while let Some(msg) = rx.recv() {
                match msg {
                    Received::Chunk(chunk) => total += chunk.len() as u64,
                    Received::Finish(()) => break,
                }
            }
            total
        });
        // 10k records through 4-record chunks: 2500 chunks, yet the
        // producer may allocate at most depth + 3 = 5 buffers.
        for i in 0..10_000u64 {
            tx.push(i);
        }
        let allocs = tx.finish(());
        assert_eq!(consumer.join().unwrap(), 10_000);
        assert!(
            allocs <= tuning.alloc_bound(),
            "{allocs} fresh allocations exceed bound {}",
            tuning.alloc_bound()
        );
    }

    /// A producer that drops without finishing still delivers its flushed
    /// records; the consumer then sees end-of-stream with no verdict.
    #[test]
    fn drop_without_finish_signals_fault() {
        let (mut tx, rx) = channel::<u8, ()>(LaneTuning {
            chunk_records: 8,
            depth: 2,
        });
        tx.push(1);
        tx.push(2);
        tx.flush();
        drop(tx);
        match rx.recv() {
            Some(Received::Chunk(chunk)) => assert_eq!(&*chunk, &[1, 2]),
            _ => panic!("expected the flushed chunk"),
        }
        assert!(rx.recv().is_none(), "no verdict after an aborted producer");
    }

    /// A vanished consumer marks the sender dead instead of wedging it.
    #[test]
    fn consumer_hangup_kills_sender() {
        let (mut tx, rx) = channel::<u8, ()>(LaneTuning {
            chunk_records: 1,
            depth: 4,
        });
        drop(rx);
        tx.push(1); // chunk_records = 1: flushes, discovers the hangup
        assert!(tx.is_dead());
        tx.push(2); // silently discarded
        tx.finish(());
    }
}
