//! In-memory layout of a graph for the accelerator.
//!
//! Graphicionado streams the graph as a CSR edge list of `(srcid, dstid,
//! weight)` 3-tuples plus ancillary offset arrays indexing the vertex and
//! edge lists (§6.1). The host process allocates these arrays on its heap
//! (identity mapped under DVM) and the accelerator accesses them through
//! the IOMMU — pointer-is-a-pointer sharing, no copies.
//!
//! Array layout (all allocated via [`dvm_os::Os::mmap`]):
//!
//! | array | element | access pattern |
//! |---|---|---|
//! | `offsets` | `u64` x (V+1) | random (per frontier vertex) |
//! | `edges` | 12 B x E (`src:u32, dst:u32, weight:f32`) | streaming |
//! | `prop` | stride x V | random |
//! | `temp` | stride x V | random (reduce target) |
//! | `frontier_a/b` | `u32` x V | streaming |

use dvm_graph::Graph;
use dvm_os::{Os, Pid};
use dvm_types::{DvmError, Permission, VirtAddr};

/// Bytes per edge record.
pub const EDGE_BYTES: u64 = 12;

/// Virtual addresses of a graph laid out in a process's heap.
#[derive(Debug, Clone, Copy)]
pub struct GraphInMemory {
    /// Vertices.
    pub num_vertices: u32,
    /// Edges.
    pub num_edges: u64,
    /// Offsets array (`u64 x (V+1)`).
    pub offsets_va: VirtAddr,
    /// Edge list (12 B records).
    pub edges_va: VirtAddr,
    /// Vertex property array.
    pub prop_va: VirtAddr,
    /// Temporary property array (reduce targets / next values).
    pub temp_va: VirtAddr,
    /// Current frontier (`u32 x V`).
    pub frontier_a_va: VirtAddr,
    /// Next frontier (`u32 x V`).
    pub frontier_b_va: VirtAddr,
    /// Bytes per vertex property (4, or `4 * features` for CF).
    pub prop_stride: u64,
}

impl GraphInMemory {
    /// VA of `offsets[v]`.
    #[inline]
    pub fn offset_entry(&self, v: u32) -> VirtAddr {
        self.offsets_va + v as u64 * 8
    }

    /// VA of edge record `i`.
    #[inline]
    pub fn edge_entry(&self, i: u64) -> VirtAddr {
        self.edges_va + i * EDGE_BYTES
    }

    /// VA of vertex `v`'s property.
    #[inline]
    pub fn prop_entry(&self, v: u32) -> VirtAddr {
        self.prop_va + v as u64 * self.prop_stride
    }

    /// VA of vertex `v`'s temporary property.
    #[inline]
    pub fn temp_entry(&self, v: u32) -> VirtAddr {
        self.temp_va + v as u64 * self.prop_stride
    }

    /// Total heap bytes of the graph arrays.
    pub fn heap_bytes(&self) -> u64 {
        (self.num_vertices as u64 + 1) * 8
            + self.num_edges * EDGE_BYTES
            + 2 * self.num_vertices as u64 * self.prop_stride
            + 2 * self.num_vertices as u64 * 4
    }
}

/// A page-buffered sequential writer into a process's memory, used to
/// initialize large arrays without a VA translation per byte.
struct ArrayWriter<'a> {
    os: &'a mut Os,
    pid: Pid,
    cursor: VirtAddr,
    buf: Vec<u8>,
}

impl<'a> ArrayWriter<'a> {
    fn new(os: &'a mut Os, pid: Pid, start: VirtAddr) -> Self {
        Self {
            os,
            pid,
            cursor: start,
            buf: Vec::with_capacity(1 << 16),
        }
    }

    fn push(&mut self, bytes: &[u8]) -> Result<(), DvmError> {
        self.buf.extend_from_slice(bytes);
        if self.buf.len() >= (1 << 16) {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), DvmError> {
        if !self.buf.is_empty() {
            self.os.write_bytes(self.pid, self.cursor, &self.buf)?;
            self.cursor += self.buf.len() as u64;
            self.buf.clear();
        }
        Ok(())
    }
}

/// Allocate the graph arrays on `pid`'s heap and copy the graph in.
/// `prop_stride` is 4 for the scalar workloads and `4 * features` for CF.
///
/// # Errors
///
/// Propagates allocation failures ([`DvmError::OutOfMemory`]) and any
/// fault from the functional copy-in.
pub fn load_graph(
    os: &mut Os,
    pid: Pid,
    graph: &Graph,
    prop_stride: u64,
) -> Result<GraphInMemory, DvmError> {
    let v = graph.num_vertices() as u64;
    let e = graph.num_edges();
    let rw = Permission::ReadWrite;
    let offsets_va = os.mmap(pid, (v + 1) * 8, rw)?;
    let edges_va = os.mmap(pid, e * EDGE_BYTES, rw)?;
    let prop_va = os.mmap(pid, v * prop_stride, rw)?;
    let temp_va = os.mmap(pid, v * prop_stride, rw)?;
    let frontier_a_va = os.mmap(pid, v * 4, rw)?;
    let frontier_b_va = os.mmap(pid, v * 4, rw)?;

    let mut w = ArrayWriter::new(os, pid, offsets_va);
    for &off in graph.offsets() {
        w.push(&off.to_le_bytes())?;
    }
    w.flush()?;

    let mut w = ArrayWriter::new(os, pid, edges_va);
    for edge in graph.edges() {
        w.push(&edge.src.to_le_bytes())?;
        w.push(&edge.dst.to_le_bytes())?;
        w.push(&edge.weight.to_le_bytes())?;
    }
    w.flush()?;

    Ok(GraphInMemory {
        num_vertices: graph.num_vertices(),
        num_edges: e,
        offsets_va,
        edges_va,
        prop_va,
        temp_va,
        frontier_a_va,
        frontier_b_va,
        prop_stride,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_graph::{rmat, RmatParams};
    use dvm_mem::MachineConfig;
    use dvm_os::OsConfig;

    #[test]
    fn load_roundtrips_arrays() {
        let mut os = Os::new(OsConfig {
            machine: MachineConfig {
                mem_bytes: 256 << 20,
            },
            ..OsConfig::default()
        });
        let pid = os.spawn().unwrap();
        let graph = rmat(8, 4, RmatParams::default(), 11);
        let g = load_graph(&mut os, pid, &graph, 4).unwrap();
        assert_eq!(g.num_vertices, 256);
        assert_eq!(g.num_edges, 1024);
        // Offsets read back correctly.
        for v in [0u32, 1, 100, 256] {
            assert_eq!(
                os.read_u64(pid, g.offset_entry(v)).unwrap(),
                graph.offsets()[v as usize]
            );
        }
        // Spot-check edge records.
        for i in [0u64, 7, 1023] {
            let mut rec = [0u8; 12];
            os.read_bytes(pid, g.edge_entry(i), &mut rec).unwrap();
            let src = u32::from_le_bytes(rec[0..4].try_into().unwrap());
            let dst = u32::from_le_bytes(rec[4..8].try_into().unwrap());
            assert_eq!(src, graph.edges()[i as usize].src);
            assert_eq!(dst, graph.edges()[i as usize].dst);
        }
    }

    #[test]
    fn arrays_are_identity_mapped_under_dvm() {
        let mut os = Os::new(OsConfig {
            machine: MachineConfig {
                mem_bytes: 256 << 20,
            },
            ..OsConfig::default()
        });
        let pid = os.spawn().unwrap();
        let graph = rmat(6, 4, RmatParams::default(), 1);
        let g = load_graph(&mut os, pid, &graph, 4).unwrap();
        for va in [g.offsets_va, g.edges_va, g.prop_va, g.frontier_b_va] {
            let (pa, _) = os.translate(pid, va).unwrap();
            assert_eq!(pa.raw(), va.raw(), "identity mapping");
        }
    }

    #[test]
    fn entry_addressing() {
        let g = GraphInMemory {
            num_vertices: 10,
            num_edges: 5,
            offsets_va: VirtAddr::new(0x1000),
            edges_va: VirtAddr::new(0x2000),
            prop_va: VirtAddr::new(0x3000),
            temp_va: VirtAddr::new(0x4000),
            frontier_a_va: VirtAddr::new(0x5000),
            frontier_b_va: VirtAddr::new(0x6000),
            prop_stride: 4,
        };
        assert_eq!(g.offset_entry(2).raw(), 0x1010);
        assert_eq!(g.edge_entry(1).raw(), 0x200c);
        assert_eq!(g.prop_entry(3).raw(), 0x300c);
        assert!(g.heap_bytes() > 0);
    }
}
