//! Multiplexing the accelerator between processes: the paper's safety
//! argument (§3.1) requires that an accelerator shared by processes can
//! never touch memory its current principal cannot. We context-switch the
//! IOMMU between two processes and verify isolation plus flush semantics.

use dvm_accel::{layout, run, AccelConfig, Workload};
use dvm_core::{EnergyParams, MachineConfig, Os, OsConfig};
use dvm_graph::{rmat, RmatParams};
use dvm_mem::{Dram, DramConfig};
use dvm_mmu::{Iommu, MemSystem, SchemeId};
use dvm_types::{AccessKind, Permission, VirtAddr};

#[test]
fn two_processes_share_one_accelerator_safely() {
    let mut os = Os::new(OsConfig {
        machine: MachineConfig { mem_bytes: 2 << 30 },
        ..OsConfig::default()
    });
    let pid_a = os.spawn().unwrap();
    let pid_b = os.spawn().unwrap();

    let graph_a = rmat(10, 4, RmatParams::default(), 1);
    let graph_b = rmat(10, 4, RmatParams::default(), 2);
    let workload = Workload::Bfs { root: 0 };
    let g_a = layout::load_graph(&mut os, pid_a, &graph_a, workload.prop_stride()).unwrap();
    let g_b = layout::load_graph(&mut os, pid_b, &graph_b, workload.prop_stride()).unwrap();

    let mut iommu = Iommu::new(SchemeId::DVM_PE_PLUS, EnergyParams::default());
    let mut dram = Dram::new(DramConfig::default());

    // Offload for A.
    let pt_a = os.process(pid_a).unwrap().page_table;
    {
        let mut sys = MemSystem::new(&mut iommu, &pt_a, None, &mut os.machine.mem, &mut dram);
        run(&workload, &g_a, &mut sys, &AccelConfig::default()).unwrap();
    }

    // Context switch: flush cached validation state, then offload for B.
    iommu.flush();
    let pt_b = os.process(pid_b).unwrap().page_table;
    {
        let mut sys = MemSystem::new(&mut iommu, &pt_b, None, &mut os.machine.mem, &mut dram);
        run(&workload, &g_b, &mut sys, &AccelConfig::default()).unwrap();

        // While running on behalf of B, touching A's graph must fault:
        // A's heap is not mapped in B's address space at those VAs.
        let fault = sys.access(g_a.prop_va, AccessKind::Read).unwrap_err();
        assert_eq!(fault.va, g_a.prop_va);
    }

    // Both processes' results are intact and independent.
    let levels_a = {
        let pt = os.process(pid_a).unwrap().page_table;
        pt.translate(&os.machine.mem, g_a.prop_entry(0)).unwrap()
    };
    assert_eq!(levels_a.1, Permission::ReadWrite);
}

#[test]
fn accelerator_cannot_reach_another_process_even_at_identity_addresses() {
    // The sharpest version of the safety claim: under DVM both processes'
    // heaps are identity mapped in *physical* memory, so B's heap VA is a
    // perfectly valid PA — but A's page table has no mapping for it, so
    // DAV rejects the access.
    let mut os = Os::new(OsConfig {
        machine: MachineConfig {
            mem_bytes: 512 << 20,
        },
        ..OsConfig::default()
    });
    let pid_a = os.spawn().unwrap();
    let pid_b = os.spawn().unwrap();
    let _a_buf = os.mmap(pid_a, 1 << 20, Permission::ReadWrite).unwrap();
    let b_secret = os.mmap(pid_b, 1 << 20, Permission::ReadWrite).unwrap();
    os.write_u64(pid_b, b_secret, 0xdead).unwrap();

    let mut iommu = Iommu::new(SchemeId::DVM_PE_PLUS, EnergyParams::default());
    let mut dram = Dram::new(DramConfig::default());
    let pt_a = os.process(pid_a).unwrap().page_table;
    let mut sys = MemSystem::new(&mut iommu, &pt_a, None, &mut os.machine.mem, &mut dram);
    // B's secret address is addressable (it IS a physical address), but
    // not authorized for A.
    let fault = sys.read_u64(b_secret).unwrap_err();
    assert_eq!(fault.va, b_secret);
    assert_eq!(iommu.stats.faults.get(), 1);

    // And the Ideal (no-protection) configuration demonstrates exactly why
    // raw physical access is unacceptable: it reads the secret just fine.
    let mut unsafe_iommu = Iommu::new(SchemeId::IDEAL, EnergyParams::default());
    let mut sys = MemSystem::new(
        &mut unsafe_iommu,
        &pt_a,
        None,
        &mut os.machine.mem,
        &mut dram,
    );
    let (leak, _) = sys.read_u64(b_secret).unwrap();
    assert_eq!(leak, 0xdead, "direct PM access has no isolation (paper §1)");
}

#[test]
fn vfork_child_can_offload_to_the_same_graph() {
    // The paper recommends vfork for process creation after shared
    // structures exist (§5): the child sees the same identity-mapped heap
    // and can offload without any copying or CoW danger.
    let mut os = Os::new(OsConfig {
        machine: MachineConfig { mem_bytes: 1 << 30 },
        ..OsConfig::default()
    });
    let parent = os.spawn().unwrap();
    let graph = rmat(9, 4, RmatParams::default(), 5);
    let workload = Workload::PageRank { iterations: 1 };
    let g = layout::load_graph(&mut os, parent, &graph, workload.prop_stride()).unwrap();

    let child = os.vfork(parent).unwrap();
    let pt = os.process(child).unwrap().page_table;
    let mut iommu = Iommu::new(SchemeId::DVM_PE_PLUS, EnergyParams::default());
    let mut dram = Dram::new(DramConfig::default());
    let mut sys = MemSystem::new(&mut iommu, &pt, None, &mut os.machine.mem, &mut dram);
    let result = run(&workload, &g, &mut sys, &AccelConfig::default()).unwrap();
    assert!(result.cycles > 0);
    assert_eq!(iommu.stats.faults.get(), 0);
    // Identity preserved throughout (no CoW was triggered).
    assert_eq!(
        os.translate(parent, g.prop_va).unwrap().0.raw(),
        g.prop_va.raw()
    );
    let _ = VirtAddr::new(0);
}
