//! Cross-crate integration tests: the whole system — OS, page tables,
//! IOMMU, accelerator — exercised end to end through the public facade.

use dvm_core::{
    run_graph_experiment, run_paper_configs, ExperimentConfig, PageSize, SchemeId, Workload,
};
use dvm_graph::{rmat, Dataset, RmatParams};

#[test]
fn dvm_claim_holds_end_to_end() {
    // The paper's core performance claim, at test scale: DVM-PE+ is close
    // to ideal and clearly faster than conventional 4K translation once
    // the working set exceeds TLB reach.
    let graph = rmat(16, 8, RmatParams::default(), 99);
    let reports = run_paper_configs(&Workload::Bfs { root: 0 }, &graph).unwrap();
    let by_name: std::collections::HashMap<&str, u64> =
        reports.iter().map(|r| (r.mmu.name(), r.cycles)).collect();
    let ideal = by_name["Ideal"] as f64;
    let pe_plus = by_name["DVM-PE+"] as f64 / ideal;
    let pe = by_name["DVM-PE"] as f64 / ideal;
    let four_k = by_name["4K,TLB+PWC"] as f64 / ideal;
    let bm = by_name["DVM-BM"] as f64 / ideal;
    assert!(pe_plus < pe, "preload must help: {pe_plus} vs {pe}");
    assert!(pe < four_k, "DVM-PE beats 4K: {pe} vs {four_k}");
    assert!(pe_plus < 1.15, "DVM-PE+ near ideal: {pe_plus}");
    assert!(four_k > 1.10, "4K pays for translation: {four_k}");
    assert!(bm < four_k, "DVM-BM beats 4K: {bm} vs {four_k}");
}

#[test]
fn energy_claim_holds_end_to_end() {
    let graph = rmat(15, 8, RmatParams::default(), 7);
    let reports = run_paper_configs(&Workload::PageRank { iterations: 1 }, &graph).unwrap();
    let by_name: std::collections::HashMap<&str, f64> = reports
        .iter()
        .map(|r| (r.mmu.name(), r.mm_energy_pj))
        .collect();
    let base = by_name["4K,TLB+PWC"];
    assert!(base > 0.0);
    // DVM-PE spends several times less dynamic MM energy than the 4K
    // baseline (paper: ~76% reduction), mainly by dropping the FA TLB.
    assert!(
        by_name["DVM-PE"] < base / 2.0,
        "DVM-PE {} vs 4K {}",
        by_name["DVM-PE"],
        base
    );
    // Ideal spends nothing.
    assert_eq!(by_name["Ideal"], 0.0);
}

#[test]
fn dataset_registry_runs_through_the_pipeline() {
    // A tiny stand-in of every paper dataset must flow through the whole
    // pipeline (generation -> OS layout -> accelerator -> report).
    for dataset in Dataset::ALL {
        let graph = dataset.generate(256);
        let workload = if dataset.is_bipartite() {
            Workload::Cf {
                iterations: 1,
                features: 8,
            }
        } else {
            Workload::Bfs { root: 0 }
        };
        let report = run_graph_experiment(
            &workload,
            &graph,
            &ExperimentConfig::for_mmu(SchemeId::DVM_PE_PLUS),
        )
        .unwrap();
        assert!(report.cycles > 0, "{dataset}");
        assert!(report.identity_validations > 0, "{dataset}");
        assert_eq!(report.fallback_translations, 0, "{dataset}: all identity");
    }
}

#[test]
fn conventional_page_sizes_order_sanely() {
    // Larger pages can only reduce TLB misses on the same access stream.
    let graph = rmat(15, 8, RmatParams::default(), 31);
    let workload = Workload::Sssp {
        root: 0,
        max_iterations: 32,
    };
    let mut rates = Vec::new();
    for page_size in [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G] {
        let report = run_graph_experiment(
            &workload,
            &graph,
            &ExperimentConfig::for_mmu(SchemeId::conventional(page_size)),
        )
        .unwrap();
        rates.push(report.tlb_miss_rate().unwrap());
    }
    assert!(rates[0] >= rates[1], "4K {} vs 2M {}", rates[0], rates[1]);
    assert!(rates[1] >= rates[2], "2M {} vs 1G {}", rates[1], rates[2]);
}

#[test]
fn whole_pipeline_is_deterministic() {
    let graph = rmat(13, 6, RmatParams::default(), 5);
    let workload = Workload::PageRank { iterations: 2 };
    let config = ExperimentConfig::for_mmu(SchemeId::DVM_BM);
    let a = run_graph_experiment(&workload, &graph, &config).unwrap();
    let b = run_graph_experiment(&workload, &graph, &config).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.mm_energy_pj, b.mm_energy_pj);
    assert_eq!(a.dram_accesses, b.dram_accesses);
}
