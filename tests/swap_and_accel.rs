//! Interactions between the swap extension (paper §4.3.2, "not
//! implemented" there) and the rest of the system: the accelerator must
//! fault cleanly on swapped-out pages, the DVM-BM bitmap must stay
//! coherent, and swap must round-trip under memory pressure created by a
//! real workload.

use dvm_core::{EnergyParams, MachineConfig, Os, OsConfig, Permission};
use dvm_mem::{Dram, DramConfig};
use dvm_mmu::{Iommu, MemSystem, SchemeId};
use dvm_os::SwapStore;
use dvm_types::{AccessKind, FaultKind, PAGE_SIZE};

fn small_os(maintain_bitmap: bool) -> Os {
    Os::new(OsConfig {
        machine: MachineConfig {
            mem_bytes: 256 << 20,
        },
        maintain_bitmap,
        ..OsConfig::default()
    })
}

#[test]
fn accelerator_faults_on_swapped_page_and_resumes_after_swap_in() {
    let mut os = small_os(false);
    let pid = os.spawn().unwrap();
    let buf = os.mmap(pid, 256 << 10, Permission::ReadWrite).unwrap();
    os.write_u64(pid, buf, 0xAA).unwrap();
    os.write_u64(pid, buf + PAGE_SIZE, 0xBB).unwrap();

    let mut store = SwapStore::new();
    os.swap_out(pid, buf, &mut store).unwrap();

    let mut iommu = Iommu::new(SchemeId::DVM_PE_PLUS, EnergyParams::default());
    let mut dram = Dram::new(DramConfig::default());
    let pt = os.process(pid).unwrap().page_table;
    {
        let mut sys = MemSystem::new(&mut iommu, &pt, None, &mut os.machine.mem, &mut dram);
        // The swapped page faults as not-mapped (the OS would handle this
        // by swapping in and retrying the offload).
        let fault = sys.read_u64(buf).unwrap_err();
        assert_eq!(fault.kind, FaultKind::NotMapped);
        // The neighbouring, resident page still works.
        let (v, _) = sys.read_u64(buf + PAGE_SIZE).unwrap();
        assert_eq!(v, 0xBB);
    }

    // Swap in; the accelerator retry succeeds with the original data.
    let identity = os.swap_in(pid, buf, &mut store).unwrap();
    assert!(identity);
    let pt = os.process(pid).unwrap().page_table;
    let mut sys = MemSystem::new(&mut iommu, &pt, None, &mut os.machine.mem, &mut dram);
    let (v, _) = sys.read_u64(buf).unwrap();
    assert_eq!(v, 0xAA);
}

#[test]
fn bitmap_is_coherent_across_swap() {
    let mut os = small_os(true);
    let pid = os.spawn().unwrap();
    let buf = os.mmap(pid, 128 << 10, Permission::ReadWrite).unwrap();
    let vpn = buf.raw() / PAGE_SIZE;
    let bitmap = os.bitmap.expect("bitmap maintained");
    assert_eq!(bitmap.perms_of(&os.machine.mem, vpn), Permission::ReadWrite);

    let mut store = SwapStore::new();
    os.swap_out(pid, buf, &mut store).unwrap();
    // Swapped out: the bitmap must say 00 so DVM-BM falls back to the
    // page table (which faults) instead of treating the access as valid
    // identity.
    assert_eq!(bitmap.perms_of(&os.machine.mem, vpn), Permission::None);

    os.swap_in(pid, buf, &mut store).unwrap();
    assert_eq!(bitmap.perms_of(&os.machine.mem, vpn), Permission::ReadWrite);

    // And DVM-BM actually validates again end to end.
    let mut iommu = Iommu::new(SchemeId::DVM_BM, EnergyParams::default());
    let mut dram = Dram::new(DramConfig::default());
    let pt = os.process(pid).unwrap().page_table;
    let bm = os.bitmap;
    let mut sys = MemSystem::new(&mut iommu, &pt, bm.as_ref(), &mut os.machine.mem, &mut dram);
    sys.access(buf, AccessKind::Read).unwrap();
    assert_eq!(sys.iommu.stats.identity_validations.get(), 1);
}

#[test]
fn swap_relieves_real_memory_pressure() {
    // Fill a small machine, then demonstrate the paper's reclamation
    // story: swap pages out, satisfy a new identity allocation, swap back.
    let mut os = Os::new(OsConfig {
        machine: MachineConfig {
            mem_bytes: 32 << 20,
        },
        ..OsConfig::default()
    });
    let pid = os.spawn().unwrap();
    // Grab regions until identity allocation fails.
    let mut regions = Vec::new();
    loop {
        match os.mmap(pid, 1 << 20, Permission::ReadWrite) {
            Ok(va) if os.process(pid).unwrap().vma_at(va).unwrap().is_identity() => {
                os.write_u64(pid, va, va.raw()).unwrap();
                regions.push(va);
            }
            _ => break,
        }
    }
    assert!(regions.len() >= 20, "filled {} regions", regions.len());

    // Swap out one full region (256 pages).
    let victim = regions[regions.len() / 2];
    let mut store = SwapStore::new();
    for page in 0..256u64 {
        os.swap_out(pid, victim + page * PAGE_SIZE, &mut store)
            .unwrap();
    }
    assert_eq!(store.len(), 256);

    // The freed physical range can back a new identity mapping.
    let fresh = os.mmap(pid, 512 << 10, Permission::ReadWrite).unwrap();
    assert!(os
        .process(pid)
        .unwrap()
        .vma_at(fresh)
        .unwrap()
        .is_identity());
    os.write_u64(pid, fresh, 7).unwrap();

    // Steal two of the victim's frames explicitly so the demand-paged
    // swap-in path is exercised regardless of where `fresh` landed.
    let victim_frame = victim.raw() / PAGE_SIZE;
    assert!(os.machine.allocator.alloc_specific_frame(victim_frame));
    assert!(os.machine.allocator.alloc_specific_frame(victim_frame + 1));

    // Swap the victim back in: stolen frames come back demand-paged, the
    // rest re-identify — and every byte survives either way.
    let mut reidentified = 0;
    for page in 0..256u64 {
        if os
            .swap_in(pid, victim + page * PAGE_SIZE, &mut store)
            .unwrap()
        {
            reidentified += 1;
        }
    }
    assert_eq!(os.read_u64(pid, victim).unwrap(), victim.raw());
    assert!(reidentified <= 254, "stolen frames cannot re-identify");
    assert!(reidentified > 0, "unstolen frames should re-identify");
    assert_eq!(os.stats.swap_reidentified, reidentified);
    // The first page is demand-paged now (its frame was stolen).
    let (pa, _) = os.translate(pid, victim).unwrap();
    assert_ne!(pa.raw(), victim.raw());
    // Other regions are untouched.
    for &va in &regions {
        if va != victim {
            assert_eq!(os.read_u64(pid, va).unwrap(), va.raw());
        }
    }
}
