//! Carrier crate for the extended (networked) test suite.
//!
//! The real content lives in `tests/` (proptest property suites moved out
//! of the individual crates) and `benches/` (criterion micro-benchmarks
//! and experiment miniatures). See `Cargo.toml` for why this package sits
//! outside the workspace.
