//! Property tests: workload correctness over randomly generated graphs —
//! the accelerator's functional results must match the host references
//! for any R-MAT seed and root, not just the fixed test graphs.

use dvm_accel::{layout, reference, run, AccelConfig, Workload};
use dvm_energy::EnergyParams;
use dvm_graph::{rmat, RmatParams};
use dvm_mem::{Dram, DramConfig, MachineConfig};
use dvm_mmu::{Iommu, MemSystem, SchemeId};
use dvm_os::{Os, OsConfig};
use proptest::prelude::*;

fn run_and_dump(
    workload: &Workload,
    graph: &dvm_graph::Graph,
) -> (Vec<u32>, Vec<f32>, dvm_accel::RunResult) {
    let mut os = Os::new(OsConfig {
        machine: MachineConfig { mem_bytes: 256 << 20 },
        ..OsConfig::default()
    });
    let pid = os.spawn().unwrap();
    let g = layout::load_graph(&mut os, pid, graph, workload.prop_stride()).unwrap();
    let mut iommu = Iommu::new(SchemeId::DVM_PE_PLUS, EnergyParams::default());
    let mut dram = Dram::new(DramConfig::default());
    let pt = os.process(pid).unwrap().page_table;
    let mut sys = MemSystem::new(&mut iommu, &pt, None, &mut os.machine.mem, &mut dram);
    let result = run(workload, &g, &mut sys, &AccelConfig::default()).unwrap();
    (
        dvm_accel::dump_props_u32(&sys, &g),
        dvm_accel::dump_props_f32(&sys, &g),
        result,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn bfs_matches_reference_for_any_seed(seed in 0u64..10_000, root_pick in 0u32..256) {
        let graph = rmat(8, 4, RmatParams::default(), seed);
        let root = root_pick % graph.num_vertices();
        let (levels, _, result) = run_and_dump(&Workload::Bfs { root }, &graph);
        prop_assert_eq!(levels, reference::bfs_levels(&graph, root));
        prop_assert!(result.cycles > 0);
    }

    #[test]
    fn pagerank_matches_reference_bitwise_for_any_seed(seed in 0u64..10_000) {
        let graph = rmat(8, 4, RmatParams::default(), seed);
        let (_, ranks, _) = run_and_dump(&Workload::PageRank { iterations: 2 }, &graph);
        prop_assert_eq!(ranks, reference::pagerank(&graph, 2));
    }

    #[test]
    fn sssp_matches_dijkstra_for_any_seed(seed in 0u64..10_000) {
        let graph = rmat(8, 4, RmatParams::default(), seed);
        let (_, dist, _) = run_and_dump(
            &Workload::Sssp { root: 0, max_iterations: 256 },
            &graph,
        );
        let want = reference::sssp_distances(&graph, 0);
        for v in 0..graph.num_vertices() as usize {
            let (got, want_v) = (dist[v], want[v]);
            prop_assert!(
                (got.is_infinite() && want_v.is_infinite())
                    || (got - want_v).abs() <= 1e-4 * want_v.abs().max(1.0),
                "seed {} vertex {}: {} vs {}", seed, v, got, want_v
            );
        }
    }

    #[test]
    fn engine_count_does_not_change_results(seed in 0u64..1000, engines in 1u32..16) {
        // Timing shards across engines, but the functional result is
        // engine-count-invariant.
        let graph = rmat(7, 4, RmatParams::default(), seed);
        let workload = Workload::Bfs { root: 0 };
        let mut os = Os::new(OsConfig {
            machine: MachineConfig { mem_bytes: 128 << 20 },
            ..OsConfig::default()
        });
        let pid = os.spawn().unwrap();
        let g = layout::load_graph(&mut os, pid, &graph, workload.prop_stride()).unwrap();
        let mut iommu = Iommu::new(SchemeId::IDEAL, EnergyParams::default());
        let mut dram = Dram::new(DramConfig::default());
        let pt = os.process(pid).unwrap().page_table;
        let mut sys = MemSystem::new(&mut iommu, &pt, None, &mut os.machine.mem, &mut dram);
        let cfg = AccelConfig { engines, ..AccelConfig::default() };
        run(&workload, &g, &mut sys, &cfg).unwrap();
        let levels = dvm_accel::dump_props_u32(&sys, &g);
        prop_assert_eq!(levels, reference::bfs_levels(&graph, 0));
    }
}
