//! Property test: the PE-optimized page table is observationally
//! equivalent to a flat reference model of `page -> (PA, perms)`,
//! under arbitrary interleavings of identity-PE maps, leaf maps,
//! non-identity page maps, unmaps, protections and CoW remaps.

use dvm_mem::{BuddyAllocator, PhysMem};
use dvm_pagetable::PageTable;
use dvm_types::{DvmError, PageSize, Permission, PhysAddr, VirtAddr, PAGE_SIZE};
use proptest::prelude::*;
use std::collections::BTreeMap;

const ARENA_PAGES: u64 = 4096; // 16 MiB of VA playground
const ARENA_BASE: u64 = 1 << 30; // park it at 1 GiB

#[derive(Debug, Clone)]
enum Op {
    IdentityPe { page: u64, pages: u64, perms: Permission },
    IdentityPeGranular { page: u64, pages: u64, perms: Permission, fields: u32 },
    IdentityLeaves { page: u64, pages: u64, perms: Permission, max: PageSize },
    MapPage { page: u64, frame: u64, perms: Permission },
    Unmap { page: u64, pages: u64 },
    Protect { page: u64, pages: u64, perms: Permission },
    Remap { page: u64, frame: u64, perms: Permission },
}

fn perms_strategy() -> impl Strategy<Value = Permission> {
    prop_oneof![
        Just(Permission::ReadOnly),
        Just(Permission::ReadWrite),
        Just(Permission::ReadExec),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let page = 0u64..ARENA_PAGES;
    let pages = 1u64..256;
    prop_oneof![
        (page.clone(), pages.clone(), perms_strategy())
            .prop_map(|(page, pages, perms)| Op::IdentityPe { page, pages, perms }),
        (page.clone(), pages.clone(), perms_strategy(), prop_oneof![
            Just(4u32), Just(8u32), Just(16u32)
        ])
            .prop_map(|(page, pages, perms, fields)| Op::IdentityPeGranular {
                page, pages, perms, fields
            }),
        (page.clone(), pages.clone(), perms_strategy(), prop_oneof![
            Just(PageSize::Size4K),
            Just(PageSize::Size2M)
        ])
            .prop_map(|(page, pages, perms, max)| Op::IdentityLeaves { page, pages, perms, max }),
        (page.clone(), 0u64..512, perms_strategy())
            .prop_map(|(page, frame, perms)| Op::MapPage { page, frame, perms }),
        (page.clone(), pages.clone()).prop_map(|(page, pages)| Op::Unmap { page, pages }),
        (page.clone(), pages, perms_strategy())
            .prop_map(|(page, pages, perms)| Op::Protect { page, pages, perms }),
        (page, 0u64..512, perms_strategy())
            .prop_map(|(page, frame, perms)| Op::Remap { page, frame, perms }),
    ]
}

fn va_of(page: u64) -> VirtAddr {
    VirtAddr::new(ARENA_BASE + page * PAGE_SIZE)
}

/// Separate PA arena for non-identity mappings, far from the VA arena.
fn alien_pa(frame: u64) -> PhysAddr {
    PhysAddr::new((1 << 26) + frame * PAGE_SIZE)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn table_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut mem = PhysMem::new(1 << 19); // 2 GiB of frames
        let mut alloc = BuddyAllocator::new(1 << 19);
        let mut pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        // Reference model: page index -> (pa, perms).
        let mut model: BTreeMap<u64, (PhysAddr, Permission)> = BTreeMap::new();

        for op in &ops {
            match *op {
                Op::IdentityPe { page, pages, perms } => {
                    let pages = pages.min(ARENA_PAGES - page);
                    let res = pt.map_identity_pe(
                        &mut mem, &mut alloc, va_of(page), pages * PAGE_SIZE, perms);
                    let free = (page..page + pages).all(|p| !model.contains_key(&p));
                    match res {
                        Ok(()) => {
                            prop_assert!(free, "map succeeded over busy range");
                            for p in page..page + pages {
                                model.insert(p, (PhysAddr::new(va_of(p).raw()), perms));
                            }
                        }
                        Err(DvmError::VaRangeBusy { .. }) => prop_assert!(!free),
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::IdentityPeGranular { page, pages, perms, fields } => {
                    let pages = pages.min(ARENA_PAGES - page);
                    let res = pt.map_identity_pe_granular(
                        &mut mem, &mut alloc, va_of(page), pages * PAGE_SIZE, perms, fields);
                    let free = (page..page + pages).all(|p| !model.contains_key(&p));
                    match res {
                        Ok(()) => {
                            prop_assert!(free, "granular map succeeded over busy range");
                            for p in page..page + pages {
                                model.insert(p, (PhysAddr::new(va_of(p).raw()), perms));
                            }
                        }
                        Err(DvmError::VaRangeBusy { .. }) => prop_assert!(!free),
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::IdentityLeaves { page, pages, perms, max } => {
                    let pages = pages.min(ARENA_PAGES - page);
                    let res = pt.map_identity_leaves(
                        &mut mem, &mut alloc, va_of(page), pages * PAGE_SIZE, perms, max);
                    let free = (page..page + pages).all(|p| !model.contains_key(&p));
                    match res {
                        Ok(()) => {
                            prop_assert!(free);
                            for p in page..page + pages {
                                model.insert(p, (PhysAddr::new(va_of(p).raw()), perms));
                            }
                        }
                        Err(DvmError::VaRangeBusy { .. }) => prop_assert!(!free),
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::MapPage { page, frame, perms } => {
                    let res = pt.map_page(
                        &mut mem, &mut alloc, va_of(page), alien_pa(frame),
                        PageSize::Size4K, perms);
                    match res {
                        Ok(()) => {
                            prop_assert!(!model.contains_key(&page));
                            model.insert(page, (alien_pa(frame), perms));
                        }
                        Err(DvmError::VaRangeBusy { .. }) => {
                            prop_assert!(model.contains_key(&page));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::Unmap { page, pages } => {
                    let pages = pages.min(ARENA_PAGES - page);
                    pt.unmap_region(&mut mem, &mut alloc, va_of(page), pages * PAGE_SIZE)
                        .unwrap();
                    for p in page..page + pages {
                        model.remove(&p);
                    }
                }
                Op::Protect { page, pages, perms } => {
                    let pages = pages.min(ARENA_PAGES - page);
                    pt.protect_region(&mut mem, &mut alloc, va_of(page), pages * PAGE_SIZE, perms)
                        .unwrap();
                    for p in page..page + pages {
                        if let Some(entry) = model.get_mut(&p) {
                            entry.1 = perms;
                        }
                    }
                }
                Op::Remap { page, frame, perms } => {
                    pt.remap_page(&mut mem, &mut alloc, va_of(page), alien_pa(frame), perms)
                        .unwrap();
                    model.insert(page, (alien_pa(frame), perms));
                }
            }

            // Spot-check equivalence on a deterministic sample of pages.
            for p in (0..ARENA_PAGES).step_by(61) {
                let got = pt.translate(&mem, va_of(p));
                let want = model.get(&p).copied();
                prop_assert_eq!(got, want, "page {} mismatch", p);
            }
        }

        // Full sweep at the end.
        for p in 0..ARENA_PAGES {
            let got = pt.translate(&mem, va_of(p));
            let want = model.get(&p).copied();
            prop_assert_eq!(got, want, "final sweep page {}", p);
        }

        // Tear-down reclaims all table frames.
        let used_by_data: u64 = 0;
        pt.free_all(&mut mem, &mut alloc);
        prop_assert_eq!(alloc.free_frames_count(), (1 << 19) - used_by_data);
    }
}
