//! Property-based tests for the buddy allocator: live allocations never
//! overlap, accounting is exact, and freeing everything restores one
//! maximal block.

use dvm_mem::{BuddyAllocator, FrameRange};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    /// Free the i-th live allocation (mod len).
    Free(usize),
    /// Trim the tail half of the i-th live allocation.
    Trim(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..64).prop_map(Op::Alloc),
        (0usize..32).prop_map(Op::Free),
        (0usize..32).prop_map(Op::Trim),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn allocations_never_overlap(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let total = 1024u64;
        let mut buddy = BuddyAllocator::new(total);
        let mut live: Vec<FrameRange> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(n) => {
                    if let Ok(r) = buddy.alloc_frames(n) {
                        prop_assert_eq!(r.count, n);
                        prop_assert!(r.end() <= total);
                        for other in &live {
                            prop_assert!(
                                r.end() <= other.start || other.end() <= r.start,
                                "overlap: {:?} vs {:?}", r, other
                            );
                        }
                        live.push(r);
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let r = live.remove(i % live.len());
                        buddy.free_frames(r);
                    }
                }
                Op::Trim(i) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        let r = live[idx];
                        if r.count >= 2 {
                            let keep = r.count / 2;
                            let tail = FrameRange { start: r.start + keep, count: r.count - keep };
                            buddy.free_subrange(tail);
                            live[idx] = FrameRange { start: r.start, count: keep };
                        }
                    }
                }
            }
            // Accounting invariant holds after every operation.
            let live_frames: u64 = live.iter().map(|r| r.count).sum();
            prop_assert_eq!(buddy.free_frames_count(), total - live_frames);
        }

        // Freeing everything restores a single maximal block.
        for r in live.drain(..) {
            buddy.free_frames(r);
        }
        let stats = buddy.stats();
        prop_assert_eq!(stats.free_frames, total);
        prop_assert_eq!(stats.largest_free_block, total);
        prop_assert_eq!(stats.free_block_count, 1);
    }

    #[test]
    fn alloc_is_aligned_to_pow2(n in 1u64..512) {
        let mut buddy = BuddyAllocator::new(2048);
        let r = buddy.alloc_frames(n).unwrap();
        prop_assert_eq!(r.start % n.next_power_of_two(), 0);
    }

    #[test]
    fn non_pow2_capacity_fully_usable(total in 1u64..700) {
        let mut buddy = BuddyAllocator::new(total);
        let mut got = 0u64;
        while buddy.alloc_frames(1).is_ok() {
            got += 1;
        }
        prop_assert_eq!(got, total);
    }
}
