//! Property tests for the graph substrate: CSR equivalence with a naive
//! adjacency representation, and generator invariants.

use dvm_graph::{rmat, to_bipartite, Edge, Graph, RmatParams};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn edge_strategy(n: u32) -> impl Strategy<Value = Edge> {
    (0..n, 0..n, 1.0f32..64.0).prop_map(|(src, dst, weight)| Edge { src, dst, weight })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_matches_naive_adjacency(
        edges in proptest::collection::vec(edge_strategy(64), 0..400)
    ) {
        let graph = Graph::from_edges(64, edges.clone());
        // Naive model: multiset of (dst, weight-bits) per source.
        let mut model: BTreeMap<u32, Vec<(u32, u32)>> = BTreeMap::new();
        for e in &edges {
            model.entry(e.src).or_default().push((e.dst, e.weight.to_bits()));
        }
        prop_assert_eq!(graph.num_edges(), edges.len() as u64);
        for v in 0..64u32 {
            let mut got: Vec<(u32, u32)> = graph
                .out_edges(v)
                .iter()
                .map(|e| (e.dst, e.weight.to_bits()))
                .collect();
            got.sort_unstable();
            let mut want = model.remove(&v).unwrap_or_default();
            want.sort_unstable();
            prop_assert_eq!(got, want, "vertex {}", v);
            prop_assert_eq!(graph.out_degree(v), graph.out_edges(v).len() as u64);
        }
    }

    #[test]
    fn transpose_is_involutive(
        edges in proptest::collection::vec(edge_strategy(32), 0..200)
    ) {
        let graph = Graph::from_edges(32, edges);
        prop_assert_eq!(graph.transpose().transpose(), graph);
    }

    #[test]
    fn offsets_are_monotone_and_bounded(
        edges in proptest::collection::vec(edge_strategy(100), 0..300)
    ) {
        let graph = Graph::from_edges(100, edges);
        let offsets = graph.offsets();
        prop_assert_eq!(offsets.len(), 101);
        prop_assert_eq!(offsets[0], 0);
        prop_assert_eq!(*offsets.last().unwrap(), graph.num_edges());
        for w in offsets.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn rmat_size_contract(scale in 4u32..10, ef in 1u32..8, seed in 0u64..1000) {
        let g = rmat(scale, ef, RmatParams::default(), seed);
        prop_assert_eq!(g.num_vertices(), 1 << scale);
        prop_assert_eq!(g.num_edges(), (ef as u64) << scale);
    }

    #[test]
    fn bipartite_partitions_strictly(
        seed in 0u64..200, users in 10u32..200, items in 5u32..50
    ) {
        let base = rmat(7, 4, RmatParams::default(), seed);
        let b = to_bipartite(&base, users, items);
        prop_assert_eq!(b.num_vertices(), users + items);
        prop_assert_eq!(b.num_edges(), base.num_edges());
        for e in b.edges() {
            prop_assert!(e.src < users);
            prop_assert!(e.dst >= users && e.dst < users + items);
            prop_assert!((1.0..=5.0).contains(&e.weight));
        }
    }
}
