//! Property test for the user-level allocator: under arbitrary alloc/free
//! interleavings, live allocations never alias (writing a distinct
//! pattern through one pointer never corrupts another) and everything is
//! reclaimable.

use dvm_mem::MachineConfig;
use dvm_os::{Malloc, Os, OsConfig};
use dvm_types::{DvmError, VirtAddr};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    /// Allocate `size` bytes (small pool sizes and large mmap sizes mixed).
    Alloc(u64),
    /// Free the i-th live allocation (mod len).
    Free(usize),
    /// Rewrite the i-th live allocation's pattern.
    Rewrite(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => prop_oneof![
            (8u64..4096).prop_map(Op::Alloc),          // pool-served
            (128 * 1024..2 * 1024 * 1024u64).prop_map(Op::Alloc), // mmap-served
        ],
        1 => (0usize..64).prop_map(Op::Free),
        1 => (0usize..64).prop_map(Op::Rewrite),
    ]
}

/// Deterministic fill pattern per (address, epoch).
fn pattern(va: VirtAddr, epoch: u64) -> u64 {
    va.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ epoch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allocations_never_alias(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut os = Os::new(OsConfig {
            machine: MachineConfig { mem_bytes: 512 << 20 },
            ..OsConfig::default()
        });
        let pid = os.spawn().unwrap();
        let mut malloc = Malloc::new(pid);
        // Live pointers with their current write epoch.
        let mut live: Vec<(VirtAddr, u64)> = Vec::new();
        let mut epochs: HashMap<u64, u64> = HashMap::new();
        let mut next_epoch = 0u64;

        for op in ops {
            match op {
                Op::Alloc(size) => {
                    match malloc.alloc(&mut os, size) {
                        Ok(va) => {
                            // Fresh allocations must not equal any live one.
                            prop_assert!(
                                live.iter().all(|(other, _)| *other != va),
                                "allocator returned a live pointer twice"
                            );
                            next_epoch += 1;
                            os.write_u64(pid, va, pattern(va, next_epoch)).unwrap();
                            epochs.insert(va.raw(), next_epoch);
                            live.push((va, next_epoch));
                        }
                        Err(DvmError::OutOfMemory { .. }) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (va, _) = live.swap_remove(i % live.len());
                        epochs.remove(&va.raw());
                        malloc.free(&mut os, va).unwrap();
                    }
                }
                Op::Rewrite(i) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        let (va, _) = live[idx];
                        next_epoch += 1;
                        os.write_u64(pid, va, pattern(va, next_epoch)).unwrap();
                        epochs.insert(va.raw(), next_epoch);
                        live[idx].1 = next_epoch;
                    }
                }
            }
            // Every live allocation still holds its own pattern: no
            // aliasing between pool blocks, pools and mmap regions.
            for (va, epoch) in &live {
                prop_assert_eq!(
                    os.read_u64(pid, *va).unwrap(),
                    pattern(*va, *epoch),
                    "clobbered allocation at {}", va
                );
            }
        }

        prop_assert_eq!(malloc.live_count(), live.len());
        // Free everything; large mappings are returned to the OS.
        for (va, _) in live {
            malloc.free(&mut os, va).unwrap();
        }
        prop_assert_eq!(malloc.live_count(), 0);
        prop_assert_eq!(malloc.live_bytes(), 0);
    }
}
