//! The cDVM model's core invariant across arbitrary workload shapes:
//! walk-cycle overhead is ordered cDVM <= 4K, and the whole pipeline is
//! deterministic.

use dvm_cpu::{evaluate, CpuModelConfig, CpuScheme, CpuWorkload};
use proptest::prelude::*;

fn quick(seed: u64) -> CpuModelConfig {
    CpuModelConfig {
        accesses: 40_000,
        footprint_div: 16,
        machine_bytes: 2 << 30,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cdvm_never_loses_to_4k(seed in 0u64..1000, widx in 0usize..5) {
        let workload = CpuWorkload::ALL[widx];
        let cfg = quick(seed);
        let base = evaluate(workload, CpuScheme::Base4K, &cfg).unwrap();
        let cdvm = evaluate(workload, CpuScheme::Cdvm, &cfg).unwrap();
        // Identical access streams, same TLB geometry; cDVM's PE walks can
        // only be cheaper than 4K leaf walks.
        prop_assert!(
            cdvm.translation_cycles <= base.translation_cycles,
            "{workload} seed {seed}: cDVM {} vs 4K {}",
            cdvm.translation_cycles,
            base.translation_cycles
        );
        // And its walker touches memory no more often. (At these scaled
        // footprints <1 GiB the regions use L2 PEs, whose working set can
        // exceed the 1 KiB AVC; at published footprints L3 PEs make the
        // ratio ~infinite, as Figure 10 shows.)
        prop_assert!(
            cdvm.walk_refs_per_kilo_access <= base.walk_refs_per_kilo_access,
            "walker refs: cDVM {} vs 4K {}",
            cdvm.walk_refs_per_kilo_access,
            base.walk_refs_per_kilo_access
        );
    }

    #[test]
    fn model_is_deterministic_per_seed(seed in 0u64..1000) {
        let cfg = quick(seed);
        let a = evaluate(CpuWorkload::Xsbench, CpuScheme::Thp, &cfg).unwrap();
        let b = evaluate(CpuWorkload::Xsbench, CpuScheme::Thp, &cfg).unwrap();
        prop_assert_eq!(a.translation_cycles, b.translation_cycles);
        prop_assert_eq!(a.l1_miss_rate, b.l1_miss_rate);
        prop_assert_eq!(a.l2_miss_rate, b.l2_miss_rate);
    }
}
