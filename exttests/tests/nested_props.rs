//! Property tests for the nested-translation model (§5 extension): every
//! scheme must resolve the same final system physical address for any
//! mapped guest address, and the cost ordering (2D >= 1D >= validation
//! only) must hold pointwise.

use dvm_mem::{BuddyAllocator, Dram, DramConfig, PhysMem};
use dvm_mmu::{NestedScheme, NestedWalker};
use dvm_pagetable::PageTable;
use dvm_types::{PageSize, Permission, VirtAddr};
use proptest::prelude::*;

const GUEST_BASE: u64 = 1 << 30;
const GUEST_SPAN: u64 = 16 << 20;

struct Rig {
    mem: PhysMem,
    dram: Dram,
    guest_pt: PageTable,
    host_pt: PageTable,
}

fn build_rig(scheme: NestedScheme) -> Rig {
    let mut mem = PhysMem::new(1 << 19);
    let mut alloc = BuddyAllocator::new(1 << 19);
    let base = VirtAddr::new(GUEST_BASE);
    let guest_identity = matches!(scheme, NestedScheme::GuestDvm | NestedScheme::FullDvm);
    let host_identity = matches!(scheme, NestedScheme::HostDvm | NestedScheme::FullDvm);

    let mut guest_pt = PageTable::new(&mut mem, &mut alloc).unwrap();
    if guest_identity {
        guest_pt
            .map_identity_pe(&mut mem, &mut alloc, base, GUEST_SPAN, Permission::ReadWrite)
            .unwrap();
    } else {
        guest_pt
            .map_identity_leaves(
                &mut mem,
                &mut alloc,
                base,
                GUEST_SPAN,
                Permission::ReadWrite,
                PageSize::Size4K,
            )
            .unwrap();
    }
    let mut host_pt = PageTable::new(&mut mem, &mut alloc).unwrap();
    host_pt
        .map_identity_pe(
            &mut mem,
            &mut alloc,
            VirtAddr::new(0),
            64 << 20,
            Permission::ReadWrite,
        )
        .unwrap();
    if host_identity {
        host_pt
            .map_identity_pe(&mut mem, &mut alloc, base, GUEST_SPAN, Permission::ReadWrite)
            .unwrap();
    } else {
        host_pt
            .map_identity_leaves(
                &mut mem,
                &mut alloc,
                base,
                GUEST_SPAN,
                Permission::ReadWrite,
                PageSize::Size2M,
            )
            .unwrap();
    }
    Rig {
        mem,
        dram: Dram::new(DramConfig::default()),
        guest_pt,
        host_pt,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_schemes_agree_on_the_final_spa(offsets in proptest::collection::vec(0u64..GUEST_SPAN, 1..40)) {
        // Our test rigs are identity end-to-end, so every scheme must map
        // gVA -> sPA == gVA; the *functional* result is scheme-invariant.
        for scheme in NestedScheme::ALL {
            let mut rig = build_rig(scheme);
            let mut walker = NestedWalker::new(scheme);
            for &off in &offsets {
                let gva = VirtAddr::new(GUEST_BASE + (off & !63));
                let t = walker
                    .translate(gva, &rig.guest_pt, &rig.host_pt, &rig.mem, &mut rig.dram)
                    .unwrap();
                prop_assert_eq!(t.spa.raw(), gva.raw(), "{} at {:#x}", scheme, gva.raw());
            }
        }
    }

    #[test]
    fn cost_ordering_holds_pointwise(off in 0u64..GUEST_SPAN) {
        let gva = VirtAddr::new(GUEST_BASE + (off & !63));
        let mut reads = Vec::new();
        for scheme in NestedScheme::ALL {
            let mut rig = build_rig(scheme);
            let mut walker = NestedWalker::new(scheme);
            let t = walker
                .translate(gva, &rig.guest_pt, &rig.host_pt, &rig.mem, &mut rig.dram)
                .unwrap();
            reads.push(t.entry_reads);
        }
        // [TwoDimensional, HostDvm, GuestDvm, FullDvm]
        prop_assert!(reads[0] > reads[1], "2D {} vs host {}", reads[0], reads[1]);
        prop_assert!(reads[0] > reads[2], "2D {} vs guest {}", reads[0], reads[2]);
        prop_assert!(reads[3] <= reads[1] && reads[3] <= reads[2],
            "full {} vs host {} / guest {}", reads[3], reads[1], reads[2]);
    }

    #[test]
    fn stats_accumulate_consistently(n in 1u32..30) {
        let mut rig = build_rig(NestedScheme::FullDvm);
        let mut walker = NestedWalker::new(NestedScheme::FullDvm);
        let mut total_reads = 0u64;
        for i in 0..n {
            let gva = VirtAddr::new(GUEST_BASE + (i as u64 * 8192) % GUEST_SPAN);
            let t = walker
                .translate(gva, &rig.guest_pt, &rig.host_pt, &rig.mem, &mut rig.dram)
                .unwrap();
            total_reads += t.entry_reads as u64;
        }
        prop_assert_eq!(walker.stats.translations.get(), n as u64);
        prop_assert_eq!(walker.stats.entry_reads.get(), total_reads);
        prop_assert!(walker.stats.mem_refs.get() <= total_reads);
    }
}
