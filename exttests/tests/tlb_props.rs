//! Property test: the fully associative TLB behaves exactly like a
//! reference LRU model, and the set-associative TLB respects per-set
//! capacity bounds.

use dvm_mmu::{Associativity, Tlb, TlbConfig, TlbEntry};
use dvm_types::{PageSize, Permission, VirtAddr};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Lookup(u64),
    Insert(u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..48).prop_map(Op::Lookup),
            (0u64..48).prop_map(Op::Insert),
        ],
        1..300,
    )
}

/// Reference model: vector ordered by recency (front = most recent).
#[derive(Default)]
struct LruModel {
    entries: Vec<u64>,
    capacity: usize,
}

impl LruModel {
    fn lookup(&mut self, vpn: u64) -> bool {
        if let Some(pos) = self.entries.iter().position(|&v| v == vpn) {
            let e = self.entries.remove(pos);
            self.entries.insert(0, e);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, vpn: u64) {
        if let Some(pos) = self.entries.iter().position(|&v| v == vpn) {
            self.entries.remove(pos);
        } else if self.entries.len() >= self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, vpn);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fully_associative_tlb_is_lru(ops in ops()) {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 16,
            assoc: Associativity::Full,
            page_size: PageSize::Size4K,
        });
        let mut model = LruModel { entries: Vec::new(), capacity: 16 };
        for op in ops {
            match op {
                Op::Lookup(vpn) => {
                    let got = tlb.lookup(VirtAddr::new(vpn << 12)).is_some();
                    let want = model.lookup(vpn);
                    prop_assert_eq!(got, want, "lookup {}", vpn);
                }
                Op::Insert(vpn) => {
                    tlb.insert(TlbEntry { vpn, pfn: vpn, perms: Permission::ReadWrite });
                    model.insert(vpn);
                }
            }
            prop_assert_eq!(tlb.occupancy(), model.entries.len());
        }
    }

    #[test]
    fn set_associative_respects_capacity_and_correctness(ops in ops()) {
        let ways = 4u32;
        let mut tlb = Tlb::new(TlbConfig {
            entries: 16,
            assoc: Associativity::SetAssociative { ways },
            page_size: PageSize::Size4K,
        });
        let mut present: std::collections::HashSet<u64> = Default::default();
        for op in ops {
            match op {
                Op::Lookup(vpn) => {
                    let got = tlb.lookup(VirtAddr::new(vpn << 12)).is_some();
                    if got {
                        // A hit must be for something that was inserted and
                        // not (necessarily) evicted — hits never invent
                        // entries.
                        prop_assert!(present.contains(&vpn));
                    }
                }
                Op::Insert(vpn) => {
                    tlb.insert(TlbEntry { vpn, pfn: vpn + 7, perms: Permission::ReadOnly });
                    present.insert(vpn);
                    // An immediate lookup must hit and carry the payload.
                    let hit = tlb.lookup(VirtAddr::new(vpn << 12)).unwrap();
                    prop_assert_eq!(hit.pfn, vpn + 7);
                }
            }
            prop_assert!(tlb.occupancy() <= 16);
        }
    }
}
