//! Criterion benchmarks of the lane-to-lane chunk transport
//! (`dvm_accel::transport`): throughput of the recycling pooled channel
//! versus a naive allocate-per-chunk baseline, plus an allocation-count
//! check that the free list really eliminates steady-state allocations.
//! The pooled transport carries every record the functional lane ships
//! to the timing lanes (`--lanes 2`/`--lanes 3`), so per-chunk overhead
//! multiplies across whole sweeps.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dvm_accel::transport::{channel, LaneTuning, Received};
use std::sync::mpsc;

/// Records per benchmark iteration — enough chunks (≥64 at production
/// tuning) for steady-state behaviour to dominate warm-up.
const RECORDS: u64 = 1 << 18;

/// A trace-record-sized payload (matches the functional lane's stream).
#[derive(Clone, Copy)]
struct Rec {
    _va: u64,
    _kind: u8,
    _engine: u8,
}

fn pooled_roundtrip(tuning: LaneTuning) -> u64 {
    let (mut tx, rx) = channel::<Rec, u64>(tuning);
    let consumer = std::thread::spawn(move || {
        let mut n = 0u64;
        loop {
            match rx.recv() {
                Some(Received::Chunk(chunk)) => n += chunk.len() as u64,
                Some(Received::Finish(sent)) => return (n, sent),
                None => panic!("producer aborted"),
            }
        }
    });
    for i in 0..RECORDS {
        tx.push(Rec {
            _va: i * 64,
            _kind: 0,
            _engine: (i % 8) as u8,
        });
    }
    let allocs = tx.finish(RECORDS);
    let (n, sent) = consumer.join().unwrap();
    assert_eq!(n, sent);
    allocs
}

/// The pre-pool design: a fresh `Vec` per chunk, sent over a bounded
/// channel, dropped by the consumer.
fn naive_roundtrip(tuning: LaneTuning) {
    let (tx, rx) = mpsc::sync_channel::<Vec<Rec>>(tuning.depth);
    let consumer = std::thread::spawn(move || {
        let mut n = 0u64;
        for chunk in rx {
            n += chunk.len() as u64;
        }
        n
    });
    let mut buf = Vec::with_capacity(tuning.chunk_records);
    for i in 0..RECORDS {
        buf.push(Rec {
            _va: i * 64,
            _kind: 0,
            _engine: (i % 8) as u8,
        });
        if buf.len() >= tuning.chunk_records {
            let full = std::mem::replace(&mut buf, Vec::with_capacity(tuning.chunk_records));
            tx.send(full).unwrap();
        }
    }
    if !buf.is_empty() {
        tx.send(buf).unwrap();
    }
    drop(tx);
    assert_eq!(consumer.join().unwrap(), RECORDS);
}

fn bench_transport(c: &mut Criterion) {
    let tuning = LaneTuning::default();

    // The recycling invariant, asserted once outside the timing loop:
    // a quarter-million records may allocate at most depth + 3 chunks.
    let allocs = pooled_roundtrip(tuning);
    assert!(
        allocs <= tuning.alloc_bound(),
        "pooled transport allocated {allocs} chunks (bound {})",
        tuning.alloc_bound()
    );

    let mut group = c.benchmark_group("transport");
    group.throughput(Throughput::Elements(RECORDS));
    group.bench_function("pooled_roundtrip", |b| {
        b.iter(|| pooled_roundtrip(tuning));
    });
    group.bench_function("naive_alloc_roundtrip", |b| {
        b.iter(|| naive_roundtrip(tuning));
    });
    group.finish();
}

criterion_group!(benches, bench_transport);
criterion_main!(benches);
