//! Criterion end-to-end benchmarks: a miniature of every experiment in
//! the paper runs under `cargo bench`, so the full evaluation code path
//! is continuously exercised, plus ablations of DVM's design choices
//! (DESIGN.md §5).

use criterion::{criterion_group, criterion_main, Criterion};
use dvm_core::{
    evaluate_cpu, page_table_study, run_graph_experiment, CpuModelConfig, CpuScheme, CpuWorkload,
    ExperimentConfig, MachineConfig, SchemeId, Os, OsConfig, PageSize, ShbenchConfig, Workload,
};
use dvm_graph::{rmat, RmatParams};
use dvm_os::{shbench, MapFlavor};
use dvm_types::Permission;

/// One small graph shared by the figure miniatures.
fn small_graph() -> dvm_graph::Graph {
    rmat(13, 8, RmatParams::default(), 7)
}

fn fig2_miniature(c: &mut Criterion) {
    let graph = small_graph();
    c.bench_function("fig2_tlb_miss_rates", |b| {
        b.iter(|| {
            let report = run_graph_experiment(
                &Workload::Bfs { root: 0 },
                &graph,
                &ExperimentConfig::for_mmu(SchemeId::CONV_4K),
            )
            .unwrap();
            std::hint::black_box(report.tlb_miss_rate())
        })
    });
}

fn table1_miniature(c: &mut Criterion) {
    let graph = small_graph();
    c.bench_function("table1_page_table_study", |b| {
        b.iter(|| {
            std::hint::black_box(
                page_table_study(&graph, &Workload::PageRank { iterations: 1 }).unwrap(),
            )
        })
    });
}

fn fig8_fig9_miniature(c: &mut Criterion) {
    let graph = small_graph();
    let mut group = c.benchmark_group("fig8_fig9_schemes");
    group.sample_size(10);
    for mmu in SchemeId::PAPER_SET {
        group.bench_function(mmu.name(), |b| {
            b.iter(|| {
                let report = run_graph_experiment(
                    &Workload::Bfs { root: 0 },
                    &graph,
                    &ExperimentConfig::for_mmu(mmu),
                )
                .unwrap();
                std::hint::black_box((report.cycles, report.mm_energy_pj))
            })
        });
    }
    group.finish();
}

fn table4_miniature(c: &mut Criterion) {
    c.bench_function("table4_shbench", |b| {
        b.iter(|| {
            let mut os = Os::new(OsConfig {
                machine: MachineConfig { mem_bytes: 512 << 20 },
                ..OsConfig::default()
            });
            let result = shbench::run(&mut os, ShbenchConfig::experiment2()).unwrap();
            std::hint::black_box(result.identity_percent())
        })
    });
}

fn fig10_miniature(c: &mut Criterion) {
    let config = CpuModelConfig {
        accesses: 50_000,
        footprint_div: 8,
        machine_bytes: 2 << 30,
        ..CpuModelConfig::default()
    };
    let mut group = c.benchmark_group("fig10_cpu_schemes");
    group.sample_size(10);
    for scheme in CpuScheme::ALL {
        group.bench_function(scheme.name(), |b| {
            b.iter(|| {
                let report = evaluate_cpu(CpuWorkload::Canneal, scheme, &config).unwrap();
                std::hint::black_box(report.overhead_percent())
            })
        });
    }
    group.finish();
}

/// Ablation: AVC caching of L1 PTEs on/off == DVM-PE walks vs a PWC-style
/// structure (the paper's argument for why the AVC works at all).
fn ablate_avc(c: &mut Criterion) {
    use dvm_mem::{BuddyAllocator, PhysMem};
    use dvm_mmu::{PtCache, PtCacheConfig, PtcLookup};
    use dvm_pagetable::PageTable;
    use dvm_sim::DetRng;
    use dvm_types::VirtAddr;

    let span: u64 = 32 << 20;
    let base = VirtAddr::new(1 << 30);
    let mut mem = PhysMem::new(1 << 18);
    let mut alloc = BuddyAllocator::new(1 << 18);
    let mut pt = PageTable::new(&mut mem, &mut alloc).unwrap();
    pt.map_identity_leaves(
        &mut mem,
        &mut alloc,
        base,
        span,
        Permission::ReadWrite,
        PageSize::Size4K,
    )
    .unwrap();

    let mut group = c.benchmark_group("ablate_avc_l1_caching");
    for (name, cfg) in [
        ("cache_l1_avc", PtCacheConfig::paper_avc()),
        ("bypass_l1_pwc", PtCacheConfig::paper_pwc()),
    ] {
        group.bench_function(name, |b| {
            let mut cache = PtCache::new(cfg);
            let mut rng = DetRng::new(9);
            let mut mem_refs = 0u64;
            b.iter(|| {
                let va = base + rng.below(span);
                let walk = pt.walk(&mem, va);
                for step in walk.steps() {
                    if cache.access(step.pte_pa, step.level) != PtcLookup::Hit {
                        mem_refs += 1;
                    }
                }
                std::hint::black_box(mem_refs)
            });
        });
    }
    group.finish();
}

/// Ablation: eager identity mapping vs forced demand paging at mmap time.
fn ablate_eager(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_eager_identity");
    for (name, identity) in [("identity", true), ("demand_paged", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut os = Os::new(OsConfig {
                    machine: MachineConfig { mem_bytes: 256 << 20 },
                    flavor: MapFlavor::DvmPe,
                    identity_enabled: identity,
                    ..OsConfig::default()
                });
                let pid = os.spawn().unwrap();
                for _ in 0..16 {
                    os.mmap(pid, 1 << 20, Permission::ReadWrite).unwrap();
                }
                std::hint::black_box(os.stats.identity_maps)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    fig2_miniature,
    table1_miniature,
    fig8_fig9_miniature,
    table4_miniature,
    fig10_miniature,
    ablate_avc,
    ablate_eager,
    ablate_pe_fields,
    virt_miniature
);
criterion_main!(benches);

/// Ablation: Permission-Entry field count (16 new-format fields vs the
/// paper's spare-bits alternatives with 8 or 4) — coarser fields force
/// more leaf fallbacks and larger tables.
fn ablate_pe_fields(c: &mut Criterion) {
    use dvm_mem::{BuddyAllocator, PhysMem};
    use dvm_pagetable::PageTable;
    use dvm_types::VirtAddr;

    let mut group = c.benchmark_group("ablate_pe_fields");
    for fields in [16u32, 8, 4] {
        group.bench_function(format!("{fields}_fields"), |b| {
            b.iter(|| {
                let mut mem = PhysMem::new(1 << 18);
                let mut alloc = BuddyAllocator::new(1 << 18);
                let mut pt = PageTable::new(&mut mem, &mut alloc).unwrap();
                // 32 regions of 128 KiB at 2 MiB strides.
                for i in 0..32u64 {
                    pt.map_identity_pe_granular(
                        &mut mem,
                        &mut alloc,
                        VirtAddr::new((64 << 20) + i * (2 << 20)),
                        128 << 10,
                        Permission::ReadWrite,
                        fields,
                    )
                    .unwrap();
                }
                std::hint::black_box(pt.size_report(&mem).total_bytes())
            })
        });
    }
    group.finish();
}

/// Extension miniature: nested translation under the four §5 schemes.
fn virt_miniature(c: &mut Criterion) {
    use dvm_mem::{BuddyAllocator, Dram, DramConfig, PhysMem};
    use dvm_mmu::{NestedScheme, NestedWalker};
    use dvm_pagetable::PageTable;
    use dvm_sim::DetRng;
    use dvm_types::VirtAddr;

    let mut group = c.benchmark_group("virt_nested_translation");
    group.sample_size(10);
    for scheme in NestedScheme::ALL {
        group.bench_function(scheme.name(), |b| {
            let mut mem = PhysMem::new(1 << 18);
            let mut alloc = BuddyAllocator::new(1 << 18);
            let base = VirtAddr::new(1 << 30);
            let span: u64 = 32 << 20;
            let mut guest_pt = PageTable::new(&mut mem, &mut alloc).unwrap();
            guest_pt
                .map_identity_pe(&mut mem, &mut alloc, base, span, Permission::ReadWrite)
                .unwrap();
            let mut host_pt = PageTable::new(&mut mem, &mut alloc).unwrap();
            host_pt
                .map_identity_pe(
                    &mut mem,
                    &mut alloc,
                    VirtAddr::new(0),
                    64 << 20,
                    Permission::ReadWrite,
                )
                .unwrap();
            host_pt
                .map_identity_pe(&mut mem, &mut alloc, base, span, Permission::ReadWrite)
                .unwrap();
            let mut dram = Dram::new(DramConfig::default());
            let mut walker = NestedWalker::new(scheme);
            let mut rng = DetRng::new(13);
            b.iter(|| {
                let gva = base + rng.below(span / 64) * 64;
                std::hint::black_box(
                    walker
                        .translate(gva, &guest_pt, &host_pt, &mem, &mut dram)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}
