//! Criterion benchmarks of the per-access simulation core: the timed
//! access path, the IOMMU validate/translate machinery, walk-heavy
//! translation, the untimed-path memo, and a BFS macro-benchmark.
//! These are the paths the performance work optimizes (DESIGN.md §3);
//! together with the wall-clock trend `scripts/ci.sh` appends to
//! `results/BENCH_trend.json` they form the perf-regression harness —
//! compare criterion's saved baselines after touching the MMU or
//! accelerator hot loops.

use criterion::{criterion_group, criterion_main, Criterion};
use dvm_core::{run_graph_experiment, ExperimentConfig, Workload};
use dvm_energy::EnergyParams;
use dvm_graph::{rmat, RmatParams};
use dvm_mem::{Dram, DramConfig, MachineConfig};
use dvm_mmu::{Iommu, MemSystem, SchemeId, TranslationMemo};
use dvm_os::{MapFlavor, Os, OsConfig};
use dvm_sim::DetRng;
use dvm_types::{AccessKind, PageSize, VirtAddr};

/// 64 MiB = 16 Ki 4K pages, far beyond the 128-entry TLB's reach, so
/// random accesses exercise misses and walks, not just the hit path.
const SPAN: u64 = 64 << 20;

const CONV_4K: SchemeId = SchemeId::CONV_4K;

/// A booted OS with one process owning a `SPAN`-byte heap mapping, plus
/// the IOMMU and DRAM to access it through.
struct Rig {
    os: Os,
    iommu: Iommu,
    dram: Dram,
    pt: dvm_pagetable::PageTable,
    base: VirtAddr,
}

fn rig(config: SchemeId) -> Rig {
    let flavor = match config.required_leaf_size() {
        Some(page_size) => MapFlavor::Paged(page_size),
        None => MapFlavor::DvmPe,
    };
    let mut os = Os::new(OsConfig {
        machine: MachineConfig { mem_bytes: 2 << 30 },
        flavor,
        maintain_bitmap: config.needs_bitmap(),
        ..OsConfig::default()
    });
    let pid = os.spawn().unwrap();
    let base = os
        .mmap(pid, SPAN, dvm_types::Permission::ReadWrite)
        .unwrap();
    let pt = os.process(pid).unwrap().page_table;
    Rig {
        os,
        iommu: Iommu::new(config, EnergyParams::default()),
        dram: Dram::new(DramConfig::default()),
        pt,
        base,
    }
}

/// The full timed access path (`MemSystem::access`): validate/translate
/// through the scheme's machinery, then a timed DRAM reference.
fn timed_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("timed_access");
    for (label, config) in [
        ("conv_4k", CONV_4K),
        ("dvm_bitmap", SchemeId::DVM_BM),
        ("dvm_pe", SchemeId::DVM_PE),
        ("ideal", SchemeId::IDEAL),
    ] {
        group.bench_function(label, |b| {
            let mut r = rig(config);
            let base = r.base;
            let bitmap = r.os.bitmap;
            let mut sys = MemSystem::new(
                &mut r.iommu,
                &r.pt,
                bitmap.as_ref(),
                &mut r.os.machine.mem,
                &mut r.dram,
            );
            let mut rng = DetRng::new(11);
            b.iter(|| {
                let va = base + rng.below(SPAN / 4) * 4;
                std::hint::black_box(sys.access(va, AccessKind::Read).unwrap())
            })
        });
    }
    group.finish();
}

/// Validation/translation alone (`Iommu::access`, no data movement):
/// the TLB + page-walker path under 4K, the DAV/bitmap path, and the
/// DAV/AVC path. Exercises the O(1)-LRU TLB and PT-cache directly.
fn iommu_validate(c: &mut Criterion) {
    let mut group = c.benchmark_group("iommu_validate");
    for (label, config) in [
        ("conv_4k", CONV_4K),
        ("dvm_bitmap", SchemeId::DVM_BM),
        ("dvm_pe", SchemeId::DVM_PE),
    ] {
        group.bench_function(label, |b| {
            let mut r = rig(config);
            let bitmap = r.os.bitmap;
            let mut rng = DetRng::new(13);
            b.iter(|| {
                let va = r.base + rng.below(SPAN / 64) * 64;
                std::hint::black_box(
                    r.iommu
                        .access(
                            va,
                            AccessKind::Read,
                            &r.pt,
                            bitmap.as_ref(),
                            &r.os.machine.mem,
                            &mut r.dram,
                        )
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// Walk-heavy translation: page-strided accesses under 4K so every
/// reference touches a fresh page and the TLB almost never hits —
/// nearly every iteration runs a timed page-table walk.
fn timed_walk(c: &mut Criterion) {
    c.bench_function("timed_walk_4k_page_stride", |b| {
        let mut r = rig(CONV_4K);
        let base = r.base;
        let bitmap = r.os.bitmap;
        let mut sys = MemSystem::new(
            &mut r.iommu,
            &r.pt,
            bitmap.as_ref(),
            &mut r.os.machine.mem,
            &mut r.dram,
        );
        let mut rng = DetRng::new(17);
        b.iter(|| {
            let va = base + rng.below(SPAN >> 12) * 4096;
            std::hint::black_box(sys.access(va, AccessKind::Read).unwrap())
        })
    });
}

/// The untimed path (result reads, property dumps, graph loading) with
/// the translation memo on vs off — the memo's direct win.
fn untimed_translate(c: &mut Criterion) {
    let mut group = c.benchmark_group("untimed_translate");
    for (label, memo) in [("memo", true), ("no_memo", false)] {
        group.bench_function(label, |b| {
            let mut r = rig(CONV_4K);
            let base = r.base;
            let bitmap = r.os.bitmap;
            let mut sys = MemSystem::new(
                &mut r.iommu,
                &r.pt,
                bitmap.as_ref(),
                &mut r.os.machine.mem,
                &mut r.dram,
            );
            if !memo {
                sys.memo = TranslationMemo::disabled();
            }
            let mut rng = DetRng::new(19);
            b.iter(|| {
                let va = base + rng.below(SPAN / 4) * 4;
                std::hint::black_box(sys.untimed_translate(va))
            })
        });
    }
    group.finish();
}

/// Macro-benchmark: a whole BFS experiment on a small RMAT graph — the
/// end-to-end per-access cost the figure sweeps pay, in miniature.
fn bfs_small_rmat(c: &mut Criterion) {
    let graph = rmat(12, 8, RmatParams::default(), 21);
    let mut group = c.benchmark_group("bfs_small_rmat");
    group.sample_size(10);
    for (label, mmu) in [("conv_4k", CONV_4K), ("ideal", SchemeId::IDEAL)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let report = run_graph_experiment(
                    &Workload::Bfs { root: 0 },
                    &graph,
                    &ExperimentConfig::for_mmu(mmu),
                )
                .unwrap();
                std::hint::black_box(report.cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    timed_access,
    iommu_validate,
    timed_walk,
    untimed_translate,
    bfs_small_rmat
);
criterion_main!(benches);
