//! Criterion micro-benchmarks of the hardware-critical structures the
//! paper argues about: TLB lookups (FA vs SA), AVC-backed PE walks vs
//! conventional 4K walks, the DVM-BM bitmap, and the buddy allocator's
//! eager contiguous allocation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dvm_mem::{BuddyAllocator, PhysMem};
use dvm_mmu::{Associativity, PtCache, PtCacheConfig, Tlb, TlbConfig, TlbEntry};
use dvm_pagetable::{PageTable, PermBitmap};
use dvm_sim::DetRng;
use dvm_types::{PageSize, Permission, PhysAddr, VirtAddr};

fn tlb_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb_lookup");
    for (name, assoc) in [
        ("fully_associative", Associativity::Full),
        ("4way", Associativity::SetAssociative { ways: 4 }),
    ] {
        group.bench_function(name, |b| {
            let mut tlb = Tlb::new(TlbConfig {
                entries: 128,
                assoc,
                page_size: PageSize::Size4K,
            });
            for vpn in 0..128 {
                tlb.insert(TlbEntry {
                    vpn,
                    pfn: vpn,
                    perms: Permission::ReadWrite,
                });
            }
            let mut rng = DetRng::new(1);
            b.iter(|| {
                let vpn = rng.below(192); // 2/3 hits
                std::hint::black_box(tlb.lookup(VirtAddr::new(vpn << 12)))
            });
        });
    }
    group.finish();
}

fn avc_probe(c: &mut Criterion) {
    c.bench_function("avc_probe", |b| {
        let mut avc = PtCache::new(PtCacheConfig::paper_avc());
        let mut rng = DetRng::new(2);
        b.iter(|| {
            let pa = PhysAddr::new(rng.below(64) * 64);
            std::hint::black_box(avc.access(pa, 2))
        });
    });
}

fn page_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional_walk");
    // 64 MiB identity region, PE tables vs 4K leaf tables.
    let span: u64 = 64 << 20;
    let base = VirtAddr::new(1 << 30);

    let mut mem_pe = PhysMem::new(1 << 19);
    let mut alloc_pe = BuddyAllocator::new(1 << 19);
    let mut pt_pe = PageTable::new(&mut mem_pe, &mut alloc_pe).unwrap();
    pt_pe
        .map_identity_pe(&mut mem_pe, &mut alloc_pe, base, span, Permission::ReadWrite)
        .unwrap();

    let mut mem_4k = PhysMem::new(1 << 19);
    let mut alloc_4k = BuddyAllocator::new(1 << 19);
    let mut pt_4k = PageTable::new(&mut mem_4k, &mut alloc_4k).unwrap();
    pt_4k
        .map_identity_leaves(
            &mut mem_4k,
            &mut alloc_4k,
            base,
            span,
            Permission::ReadWrite,
            PageSize::Size4K,
        )
        .unwrap();

    let mut rng = DetRng::new(3);
    group.bench_function("pe_tables", |b| {
        b.iter(|| {
            let va = base + rng.below(span);
            std::hint::black_box(pt_pe.walk(&mem_pe, va))
        })
    });
    let mut rng = DetRng::new(3);
    group.bench_function("4k_leaf_tables", |b| {
        b.iter(|| {
            let va = base + rng.below(span);
            std::hint::black_box(pt_4k.walk(&mem_4k, va))
        })
    });
    group.finish();
}

fn buddy_alloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("buddy");
    group.bench_function("eager_contiguous_1MiB", |b| {
        b.iter_batched(
            || BuddyAllocator::new(1 << 18),
            |mut buddy| {
                // 1 MiB = 256 frames, with trim (300 frames requested).
                let r = buddy.alloc_frames(300).unwrap();
                buddy.free_frames(r);
                buddy
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("single_frame", |b| {
        b.iter_batched(
            || BuddyAllocator::new(1 << 18),
            |mut buddy| {
                let f = buddy.alloc_frame().unwrap();
                buddy.free_frames(dvm_mem::FrameRange { start: f, count: 1 });
                buddy
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bitmap_dav(c: &mut Criterion) {
    c.bench_function("bitmap_perms_lookup", |b| {
        let mut mem = PhysMem::new(1 << 16);
        let mut alloc = BuddyAllocator::new(1 << 16);
        let bitmap = PermBitmap::new(&mut mem, &mut alloc, 1 << 30).unwrap();
        bitmap.set_range(&mut mem, 0, 1 << 16, Permission::ReadWrite);
        let mut rng = DetRng::new(4);
        b.iter(|| {
            let vpn = rng.below(1 << 16);
            std::hint::black_box(bitmap.perms_of(&mem, vpn))
        });
    });
}

criterion_group!(benches, tlb_lookup, avc_probe, page_walks, buddy_alloc, bitmap_dav);
criterion_main!(benches);
